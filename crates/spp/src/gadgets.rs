//! The instance corpus used in the paper and in the SPP literature.
//!
//! * [`disagree`] — Fig. 5 / Example A.1 (two stable solutions; oscillates in
//!   R1O but not in REO, REF, R1A, RMA, REA),
//! * [`fig6`] — Fig. 6 / Example A.2 (oscillates in REO and REF but not in
//!   the polling models),
//! * [`fig7`] — Fig. 7 / Example A.3 (REO execution not exactly realizable in
//!   R1O),
//! * [`fig8`] — Fig. 8 / Example A.4 (REA execution not realizable with
//!   repetition in R1O),
//! * [`fig9`] — Fig. 9 / Example A.5 (REA execution not exactly realizable in
//!   R1S),
//! * [`bad_gadget`] — the classic unsolvable, always-divergent instance of
//!   Griffin–Shepherd–Wilfong,
//! * [`good_gadget`] — the same topology with safe (shortest-path-style)
//!   preferences.
//!
//! The preference lists for [`fig6`] are reconstructed from the prose and the
//! step tables of Example A.2 (the figure itself lists them next to each
//! node); the module tests plus `routelab-engine`'s paper-table conformance
//! tests pin the reconstruction to every π value printed in the paper.

use crate::instance::{SppBuilder, SppInstance};

fn must(r: Result<SppInstance, crate::SppError>) -> SppInstance {
    r.expect("gadget definitions are statically valid")
}

/// DISAGREE (Fig. 5, Example A.1; originally from Griffin–Shepherd–Wilfong).
///
/// `x`: `xyd > xd`; `y`: `yxd > yd`. Two stable solutions:
/// `(d, xyd, yd)` and `(d, xd, yxd)`.
pub fn disagree() -> SppInstance {
    let mut b = SppBuilder::new();
    let d = b.node("d");
    b.node("x");
    b.node("y");
    must_steps(&mut b, &[("x", "d"), ("y", "d"), ("x", "y")]);
    b.dest(d).expect("d exists");
    b.prefer_named("x", &["xyd", "xd"]).expect("paths valid");
    b.prefer_named("y", &["yxd", "yd"]).expect("paths valid");
    must(b.build())
}

fn must_steps(b: &mut SppBuilder, edges: &[(&str, &str)]) {
    for (a, c) in edges {
        b.edge(a, c).expect("edge endpoints exist");
    }
}

/// The Fig. 6 instance of Example A.2.
///
/// Seven nodes `d, x, y, z, a, u, v`. Spokes `x`, `y`, `z` only route
/// directly; `a` prefers `azd > ayd > axd`; `u` refuses every path containing
/// `y` and prefers `uvazd > uazd > uaxd`; `v` prefers
/// `vuazd > vazd > vuayd > vuaxd > vayd`.
///
/// Oscillates in REO and REF but converges in R1A, RMA, REA.
pub fn fig6() -> SppInstance {
    let mut b = SppBuilder::new();
    let d = b.node("d");
    for n in ["x", "y", "z", "a", "u", "v"] {
        b.node(n);
    }
    must_steps(
        &mut b,
        &[
            ("x", "d"),
            ("y", "d"),
            ("z", "d"),
            ("a", "x"),
            ("a", "y"),
            ("a", "z"),
            ("u", "a"),
            ("v", "a"),
            ("u", "v"),
        ],
    );
    b.dest(d).expect("d exists");
    b.prefer_named("x", &["xd"]).expect("paths valid");
    b.prefer_named("y", &["yd"]).expect("paths valid");
    b.prefer_named("z", &["zd"]).expect("paths valid");
    b.prefer_named("a", &["azd", "ayd", "axd"]).expect("paths valid");
    b.prefer_named("u", &["uvazd", "uazd", "uaxd"]).expect("paths valid");
    b.prefer_named("v", &["vuazd", "vazd", "vuayd", "vuaxd", "vayd"]).expect("paths valid");
    must(b.build())
}

/// The Fig. 7 instance of Example A.3.
///
/// Six nodes `d, a, b, u, v, s`. `u`: `uad > ubd`; `v`: `vad > vbd`;
/// `s`: `subd > svbd > suad`.
///
/// Carries an REO execution that no R1O execution realizes exactly.
pub fn fig7() -> SppInstance {
    let mut b = SppBuilder::new();
    let d = b.node("d");
    for n in ["a", "b", "u", "v", "s"] {
        b.node(n);
    }
    must_steps(
        &mut b,
        &[
            ("a", "d"),
            ("b", "d"),
            ("u", "a"),
            ("u", "b"),
            ("v", "a"),
            ("v", "b"),
            ("s", "u"),
            ("s", "v"),
        ],
    );
    b.dest(d).expect("d exists");
    b.prefer_named("a", &["ad"]).expect("paths valid");
    b.prefer_named("b", &["bd"]).expect("paths valid");
    b.prefer_named("u", &["uad", "ubd"]).expect("paths valid");
    b.prefer_named("v", &["vad", "vbd"]).expect("paths valid");
    b.prefer_named("s", &["subd", "svbd", "suad"]).expect("paths valid");
    must(b.build())
}

/// The Fig. 8 instance of Example A.4.
///
/// Five nodes `d, a, b, u, s`; permitted paths `ad, bd, ubd, uad, suad,
/// subd` with `ubd > uad` at `u` and `suad > subd` at `s`.
///
/// Carries an REA execution that no R1O execution realizes with repetition
/// (though it is realizable as a subsequence).
pub fn fig8() -> SppInstance {
    let mut b = SppBuilder::new();
    let d = b.node("d");
    for n in ["a", "b", "u", "s"] {
        b.node(n);
    }
    must_steps(&mut b, &[("a", "d"), ("b", "d"), ("u", "a"), ("u", "b"), ("s", "u")]);
    b.dest(d).expect("d exists");
    b.prefer_named("a", &["ad"]).expect("paths valid");
    b.prefer_named("b", &["bd"]).expect("paths valid");
    b.prefer_named("u", &["ubd", "uad"]).expect("paths valid");
    b.prefer_named("s", &["suad", "subd"]).expect("paths valid");
    must(b.build())
}

/// The Fig. 9 instance of Example A.5.
///
/// Six nodes `d, a, b, x, c, s`; permitted paths `ad, bd, xd, cad, cbd,
/// scad, scbd, sxd` with `scbd > sxd > scad` at `s` and `cad > cbd` at `c`.
///
/// Carries an REA (also REO) execution that no R1S execution realizes
/// exactly.
pub fn fig9() -> SppInstance {
    let mut b = SppBuilder::new();
    let d = b.node("d");
    for n in ["a", "b", "x", "c", "s"] {
        b.node(n);
    }
    must_steps(
        &mut b,
        &[("a", "d"), ("b", "d"), ("x", "d"), ("c", "a"), ("c", "b"), ("s", "c"), ("s", "x")],
    );
    b.dest(d).expect("d exists");
    b.prefer_named("a", &["ad"]).expect("paths valid");
    b.prefer_named("b", &["bd"]).expect("paths valid");
    b.prefer_named("x", &["xd"]).expect("paths valid");
    b.prefer_named("c", &["cad", "cbd"]).expect("paths valid");
    b.prefer_named("s", &["scbd", "sxd", "scad"]).expect("paths valid");
    must(b.build())
}

/// BAD-GADGET (Griffin–Shepherd–Wilfong): no stable path assignment exists;
/// the routing algorithm can never converge in any model.
///
/// Nodes `1, 2, 3` around `d`; node `i`: `i (i+1) d > i d` cyclically.
pub fn bad_gadget() -> SppInstance {
    let mut b = SppBuilder::new();
    let d = b.node("d");
    for n in ["1", "2", "3"] {
        b.node(n);
    }
    must_steps(&mut b, &[("1", "d"), ("2", "d"), ("3", "d"), ("1", "2"), ("2", "3"), ("3", "1")]);
    b.dest(d).expect("d exists");
    b.prefer_named("1", &["12d", "1d"]).expect("paths valid");
    b.prefer_named("2", &["23d", "2d"]).expect("paths valid");
    b.prefer_named("3", &["31d", "3d"]).expect("paths valid");
    must(b.build())
}

/// GOOD-GADGET: BAD-GADGET's topology with safe preferences (every node
/// prefers its direct route). Has a unique stable solution and no dispute
/// wheel; every fair execution converges in every model.
pub fn good_gadget() -> SppInstance {
    let mut b = SppBuilder::new();
    let d = b.node("d");
    for n in ["1", "2", "3"] {
        b.node(n);
    }
    must_steps(&mut b, &[("1", "d"), ("2", "d"), ("3", "d"), ("1", "2"), ("2", "3"), ("3", "1")]);
    b.dest(d).expect("d exists");
    b.prefer_named("1", &["1d", "12d"]).expect("paths valid");
    b.prefer_named("2", &["2d", "23d"]).expect("paths valid");
    b.prefer_named("3", &["3d", "31d"]).expect("paths valid");
    must(b.build())
}

/// A simple two-node line `v — d`: the smallest nontrivial instance, handy in
/// unit tests.
pub fn line2() -> SppInstance {
    let mut b = SppBuilder::new();
    let d = b.node("d");
    b.node("v");
    must_steps(&mut b, &[("v", "d")]);
    b.dest(d).expect("d exists");
    b.prefer_named("v", &["vd"]).expect("paths valid");
    must(b.build())
}

/// The generalized BAD-GADGET: `n ≥ 3` nodes around `d`, node `i` preferring
/// the route through its clockwise neighbor over its direct route.
///
/// For odd `n` the instance has no stable path assignment at all (the
/// classic parity argument: around the ring, indirect choices force an
/// alternation that cannot close); for even `n` alternating direct/indirect
/// assignments are stable. `wheel(3)` is exactly [`bad_gadget`].
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn wheel(n: usize) -> SppInstance {
    assert!(n >= 3, "a wheel needs at least three rim nodes");
    let mut b = SppBuilder::new();
    let d = b.node("d");
    let rim: Vec<_> = (1..=n).map(|i| b.node(&format!("{i}"))).collect();
    for (i, &v) in rim.iter().enumerate() {
        b.edge_between(v, d).expect("edge endpoints exist");
        b.edge_between(v, rim[(i + 1) % n]).expect("edge endpoints exist");
    }
    b.dest(d).expect("d exists");
    for (i, &v) in rim.iter().enumerate() {
        let next = rim[(i + 1) % n];
        b.prefer(v, [vec![v, next, d], vec![v, d]]).expect("paths valid");
    }
    must(b.build())
}

/// `k` independent DISAGREE pairs sharing one destination: nodes `xi`, `yi`
/// with the Fig. 5 preferences. The instance has exactly `2^k` stable path
/// assignments and `2k + 1` nodes — a scaling family for the solver and the
/// explorer.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn disagree_chain(k: usize) -> SppInstance {
    assert!(k >= 1, "need at least one DISAGREE pair");
    let mut b = SppBuilder::new();
    let d = b.node("d");
    for i in 1..=k {
        let x = b.node(&format!("x{i}"));
        let y = b.node(&format!("y{i}"));
        b.edge_between(x, d).expect("edge endpoints exist");
        b.edge_between(y, d).expect("edge endpoints exist");
        b.edge_between(x, y).expect("edge endpoints exist");
        b.prefer(x, [vec![x, y, d], vec![x, d]]).expect("paths valid");
        b.prefer(y, [vec![y, x, d], vec![y, d]]).expect("paths valid");
    }
    b.dest(d).expect("d exists");
    must(b.build())
}

/// Every gadget above, labeled, for corpus-wide experiments.
pub fn corpus() -> Vec<(&'static str, SppInstance)> {
    vec![
        ("DISAGREE", disagree()),
        ("FIG6", fig6()),
        ("FIG7", fig7()),
        ("FIG8", fig8()),
        ("FIG9", fig9()),
        ("BAD-GADGET", bad_gadget()),
        ("GOOD-GADGET", good_gadget()),
        ("LINE2", line2()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_gadgets_validate() {
        for (name, inst) in corpus() {
            assert!(inst.validate().is_ok(), "{name} failed validation");
        }
    }

    #[test]
    fn disagree_shape() {
        let g = disagree();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.graph().edge_count(), 3);
        let x = g.node_by_name("x").unwrap();
        assert_eq!(g.fmt_path(&g.permitted(x)[0].path), "xyd");
    }

    #[test]
    fn fig6_preferences_match_prose() {
        let g = fig6();
        let a = g.node_by_name("a").unwrap();
        let prefs: Vec<String> = g.permitted(a).iter().map(|rp| g.fmt_path(&rp.path)).collect();
        assert_eq!(prefs, ["azd", "ayd", "axd"]);
        // u refuses every path containing y.
        let u = g.node_by_name("u").unwrap();
        let y = g.node_by_name("y").unwrap();
        assert!(g.permitted(u).iter().all(|rp| !rp.path.contains(y)));
    }

    #[test]
    fn fig7_s_ordering() {
        let g = fig7();
        let s = g.node_by_name("s").unwrap();
        let subd = g.parse_path("subd").unwrap();
        let svbd = g.parse_path("svbd").unwrap();
        let suad = g.parse_path("suad").unwrap();
        assert!(g.rank(s, &subd).unwrap() < g.rank(s, &svbd).unwrap());
        assert!(g.rank(s, &svbd).unwrap() < g.rank(s, &suad).unwrap());
    }

    #[test]
    fn fig8_orderings_match_paper() {
        let g = fig8();
        let u = g.node_by_name("u").unwrap();
        let s = g.node_by_name("s").unwrap();
        let ubd = g.parse_path("ubd").unwrap();
        let uad = g.parse_path("uad").unwrap();
        assert!(g.rank(u, &ubd).unwrap() < g.rank(u, &uad).unwrap());
        let suad = g.parse_path("suad").unwrap();
        let subd = g.parse_path("subd").unwrap();
        assert!(g.rank(s, &suad).unwrap() < g.rank(s, &subd).unwrap());
    }

    #[test]
    fn fig9_orderings_match_paper() {
        let g = fig9();
        let s = g.node_by_name("s").unwrap();
        let c = g.node_by_name("c").unwrap();
        let scbd = g.parse_path("scbd").unwrap();
        let sxd = g.parse_path("sxd").unwrap();
        let scad = g.parse_path("scad").unwrap();
        assert!(g.rank(s, &scbd).unwrap() < g.rank(s, &sxd).unwrap());
        assert!(g.rank(s, &sxd).unwrap() < g.rank(s, &scad).unwrap());
        let cad = g.parse_path("cad").unwrap();
        let cbd = g.parse_path("cbd").unwrap();
        assert!(g.rank(c, &cad).unwrap() < g.rank(c, &cbd).unwrap());
    }

    #[test]
    fn wheel_3_is_bad_gadget() {
        assert_eq!(wheel(3), bad_gadget());
    }

    #[test]
    fn wheel_solvability_follows_parity() {
        use crate::solve::enumerate_stable_assignments;
        for n in 3..=6 {
            let inst = wheel(n);
            assert!(inst.validate().is_ok(), "wheel({n})");
            let solutions = enumerate_stable_assignments(&inst, 10_000_000).unwrap();
            if n % 2 == 0 {
                assert!(!solutions.is_empty(), "wheel({n}) must be solvable");
            } else {
                assert!(solutions.is_empty(), "wheel({n}) must be unsolvable");
            }
        }
    }

    #[test]
    fn wheels_always_carry_a_dispute_wheel() {
        for n in 3..=6 {
            assert!(!crate::dispute::is_wheel_free(&wheel(n)), "wheel({n})");
        }
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn tiny_wheel_rejected() {
        let _ = wheel(2);
    }

    #[test]
    fn disagree_chain_has_exponentially_many_solutions() {
        use crate::solve::enumerate_stable_assignments;
        for k in 1..=3 {
            let inst = disagree_chain(k);
            assert_eq!(inst.node_count(), 2 * k + 1);
            let solutions = enumerate_stable_assignments(&inst, 10_000_000).unwrap();
            assert_eq!(solutions.len(), 1 << k, "disagree_chain({k})");
        }
        assert_eq!(disagree_chain(1).graph().edge_count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_chain_rejected() {
        let _ = disagree_chain(0);
    }

    #[test]
    fn corpus_names_unique() {
        let c = corpus();
        for (i, (n, _)) in c.iter().enumerate() {
            assert!(c[i + 1..].iter().all(|(m, _)| m != n));
        }
    }
}

//! Interned route tables: the engine hot path's allocation-free view of an
//! instance.
//!
//! An SPP instance has a *finite* route universe: ε plus every permitted
//! path of every node. A [`RouteTable`] interns that universe once, giving
//! each route a dense [`RouteId`] laid out so that the two operations the
//! activation-step hot loop performs become array lookups:
//!
//! * **Preference order is array position.** Node `v`'s permitted paths
//!   occupy the contiguous id block `[base(v), base(v) + |P_v|)` sorted by
//!   `(rank, lex)` — exactly the total order [`SppInstance::choose_best`]
//!   minimizes over (ranks tie only between paths through the same next
//!   hop, where the lexicographic tiebreak applies; both comparisons are
//!   strict, so the order is total and the minimum unique). Choosing the
//!   best candidate reduces to taking the minimum of local positions.
//! * **Extension is a precomputed table.** For every directed channel
//!   `(u, v)` the table stores, per route announcable by `u` (ε or a
//!   permitted path of `u`), the local preference position at `v` of the
//!   extension `v·p` — or [`NO_CANDIDATE`] when the extension loops or is
//!   not permitted. The paper's algorithm action 2 (extend, filter, rank)
//!   costs one indexed load per in-channel.
//!
//! Routes decode back to [`Route`] values by reference ([`RouteTable::route`]),
//! so rendering, traces and the flight recorder stay byte-identical to the
//! route-value engine.

use std::collections::HashMap;

use crate::graph::{Channel, NodeId};
use crate::instance::SppInstance;
use crate::path::{Path, Route};

/// Dense identifier of an interned route. Id 0 is ε; the ids of node `v`'s
/// permitted paths are contiguous in preference order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RouteId(pub u32);

impl RouteId {
    /// The empty route ε.
    pub const EPSILON: RouteId = RouteId(0);

    /// `true` for ε.
    pub fn is_epsilon(self) -> bool {
        self.0 == 0
    }

    /// The id as a usize index into [`RouteTable::route`]'s universe.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel preference position meaning "no feasible candidate" — it
/// compares greater than every real position, so a plain `min` over
/// candidate positions implements choice with infeasibility for free.
pub const NO_CANDIDATE: u32 = u32::MAX;

/// The interned route universe of one instance plus the per-channel
/// extension tables (see the module docs).
///
/// Built once per instance; all queries are `O(1)` and allocation-free.
#[derive(Debug, Clone)]
pub struct RouteTable {
    /// `routes[0]` is ε, then each node's permitted paths in preference
    /// order, nodes in increasing id order.
    routes: Vec<Route>,
    /// First route id of each node's block.
    base: Vec<u32>,
    /// Block length of each node.
    count: Vec<u32>,
    /// Path → id (paths embed their source, so the map is global).
    intern: HashMap<Path, RouteId>,
    /// Directed channels in [`crate::Graph::channels`] order — the same
    /// dense ids the engine's channel index assigns.
    channels: Vec<Channel>,
    /// Per channel `(u, v)`: slot 0 is ε, slot `1 + j` the local preference
    /// position at `v` of extending `u`'s `j`-th permitted path (or
    /// [`NO_CANDIDATE`]).
    ext: Vec<Box<[u32]>>,
    /// Per channel: `base(from)`, to map a [`RouteId`] to its ext slot.
    ext_base: Vec<u32>,
    dest: NodeId,
    /// The destination's constant choice: its trivial path.
    dest_choice: RouteId,
}

impl RouteTable {
    /// Interns the route universe of a validated instance.
    pub fn new(inst: &SppInstance) -> Self {
        let n = inst.node_count();
        let mut routes = vec![Route::empty()];
        let mut base = Vec::with_capacity(n);
        let mut count = Vec::with_capacity(n);
        let mut intern = HashMap::new();
        for v in inst.nodes() {
            let perms = inst.permitted(v);
            base.push(routes.len() as u32);
            count.push(perms.len() as u32);
            for rp in perms {
                intern.insert(rp.path.clone(), RouteId(routes.len() as u32));
                routes.push(Route::path(rp.path.clone()));
            }
        }
        let channels: Vec<Channel> = inst.graph().channels().collect();
        let mut ext = Vec::with_capacity(channels.len());
        let mut ext_base = Vec::with_capacity(channels.len());
        for ch in &channels {
            let u = ch.from.index();
            let v = ch.to;
            let mut t = vec![NO_CANDIDATE; count[u] as usize + 1];
            for j in 0..count[u] as usize {
                let p = routes[base[u] as usize + j].as_path().expect("non-ε block entry");
                if let Ok(extended) = p.prepend(v) {
                    if let Some(&rid) = intern.get(&extended) {
                        // Extended paths start at v, so rid lies in v's block.
                        t[j + 1] = rid.0 - base[v.index()];
                    }
                }
            }
            ext.push(t.into_boxed_slice());
            ext_base.push(base[u]);
        }
        let dest = inst.dest();
        // Validation guarantees the destination's block is exactly its
        // trivial path.
        let dest_choice = RouteId(base[dest.index()]);
        debug_assert_eq!(
            routes[dest_choice.index()].as_path().map(Path::is_trivial),
            Some(true),
            "destination block must start with the trivial path"
        );
        RouteTable { routes, base, count, intern, channels, ext, ext_base, dest, dest_choice }
    }

    /// Total number of interned routes (including ε).
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Never empty — ε is always interned.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of directed channels the extension tables cover.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.count.len()
    }

    /// The destination node.
    pub fn dest(&self) -> NodeId {
        self.dest
    }

    /// The destination's constant choice (its trivial path).
    pub fn dest_choice(&self) -> RouteId {
        self.dest_choice
    }

    /// Decodes an id to its route value.
    pub fn route(&self, id: RouteId) -> &Route {
        &self.routes[id.index()]
    }

    /// Number of permitted paths at `v`.
    pub fn route_count(&self, v: NodeId) -> usize {
        self.count[v.index()] as usize
    }

    /// The id of `v`'s `pos`-th most preferred path (0-based).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when `pos` is out of `v`'s block.
    pub fn route_id(&self, v: NodeId, pos: u32) -> RouteId {
        debug_assert!(pos < self.count[v.index()]);
        RouteId(self.base[v.index()] + pos)
    }

    /// The id of an interned path, or `None` if it is permitted nowhere.
    pub fn intern_path(&self, p: &Path) -> Option<RouteId> {
        self.intern.get(p).copied()
    }

    /// The id of a route value (ε always interns).
    pub fn intern_route(&self, r: &Route) -> Option<RouteId> {
        match r.as_path() {
            None => Some(RouteId::EPSILON),
            Some(p) => self.intern_path(p),
        }
    }

    /// The local preference position at `to(cid)` of extending `learned`
    /// (the route ρ holds for channel `cid` — ε or a permitted path of
    /// `from(cid)`), or [`NO_CANDIDATE`]. This is the hot-path form of
    /// [`SppInstance::candidate`]: one indexed load, no `Path` built.
    pub fn candidate_pos(&self, cid: usize, learned: RouteId) -> u32 {
        let slot =
            if learned.is_epsilon() { 0 } else { (learned.0 - self.ext_base[cid] + 1) as usize };
        self.ext[cid][slot]
    }

    /// Completes a choice at `v` from the minimal candidate position
    /// returned by scanning [`RouteTable::candidate_pos`] over `v`'s
    /// in-channels: ε when nothing was feasible. The destination never
    /// scans — its choice is [`RouteTable::dest_choice`].
    pub fn decide(&self, v: NodeId, best_pos: u32) -> RouteId {
        if best_pos == NO_CANDIDATE {
            RouteId::EPSILON
        } else {
            RouteId(self.base[v.index()] + best_pos)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets;
    use crate::graph::Channel;

    fn tables() -> Vec<(String, SppInstance)> {
        gadgets::corpus().into_iter().map(|(n, i)| (n.to_string(), i)).collect()
    }

    #[test]
    fn epsilon_is_id_zero_and_blocks_are_preference_ordered() {
        for (name, inst) in tables() {
            let t = RouteTable::new(&inst);
            assert!(t.route(RouteId::EPSILON).is_epsilon(), "{name}");
            assert!(!t.is_empty());
            for v in inst.nodes() {
                let perms = inst.permitted(v);
                assert_eq!(t.route_count(v), perms.len(), "{name}");
                for (pos, rp) in perms.iter().enumerate() {
                    let id = t.route_id(v, pos as u32);
                    assert_eq!(t.route(id).as_path(), Some(&rp.path), "{name}");
                    assert_eq!(t.intern_path(&rp.path), Some(id), "{name}");
                }
            }
        }
    }

    #[test]
    fn destination_choice_is_trivial() {
        for (name, inst) in tables() {
            let t = RouteTable::new(&inst);
            let d = inst.dest();
            assert_eq!(t.dest(), d);
            assert_eq!(t.route(t.dest_choice()).as_path(), Some(&Path::trivial(d)), "{name}");
        }
    }

    #[test]
    fn candidate_pos_agrees_with_naive_candidate() {
        for (name, inst) in tables() {
            let t = RouteTable::new(&inst);
            for (cid, ch) in inst.graph().channels().enumerate() {
                let u = ch.from;
                let v = ch.to;
                // ε never extends.
                assert_eq!(t.candidate_pos(cid, RouteId::EPSILON), NO_CANDIDATE, "{name}");
                for (pos, rp) in inst.permitted(u).iter().enumerate() {
                    let learned = Route::path(rp.path.clone());
                    let id = t.route_id(u, pos as u32);
                    let got = t.candidate_pos(cid, id);
                    match inst.candidate(v, &learned) {
                        None => assert_eq!(got, NO_CANDIDATE, "{name} {ch}"),
                        Some((p, _rank)) => {
                            assert_ne!(got, NO_CANDIDATE, "{name} {ch}");
                            let decoded = t.route(t.decide(v, got));
                            assert_eq!(decoded.as_path(), Some(&p), "{name} {ch}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn min_position_choice_equals_choose_best() {
        // Exhaustively sweep single-learned-route configurations on each
        // gadget: the min-of-positions rule must reproduce choose_best.
        for (name, inst) in tables() {
            let t = RouteTable::new(&inst);
            let channels: Vec<Channel> = inst.graph().channels().collect();
            for v in inst.nodes() {
                let ins: Vec<usize> =
                    (0..channels.len()).filter(|&c| channels[c].to == v).collect();
                // All-ε plus each channel carrying each of its sender's routes.
                let mut configs: Vec<Vec<RouteId>> = vec![vec![RouteId::EPSILON; ins.len()]];
                for (k, &cid) in ins.iter().enumerate() {
                    let u = channels[cid].from;
                    for pos in 0..t.route_count(u) {
                        let mut cfg = vec![RouteId::EPSILON; ins.len()];
                        cfg[k] = t.route_id(u, pos as u32);
                        configs.push(cfg);
                        // A denser config: every channel carries something.
                        let full: Vec<RouteId> = ins
                            .iter()
                            .map(|&c| {
                                let w = channels[c].from;
                                if t.route_count(w) > 0 {
                                    t.route_id(w, (pos % t.route_count(w)) as u32)
                                } else {
                                    RouteId::EPSILON
                                }
                            })
                            .collect();
                        configs.push(full);
                    }
                }
                for cfg in configs {
                    let interned = if v == t.dest() {
                        t.dest_choice()
                    } else {
                        let mut best = NO_CANDIDATE;
                        for (k, &cid) in ins.iter().enumerate() {
                            best = best.min(t.candidate_pos(cid, cfg[k]));
                        }
                        t.decide(v, best)
                    };
                    let routes: Vec<Route> = cfg.iter().map(|&id| t.route(id).clone()).collect();
                    let naive = inst.choose_best(v, routes.iter());
                    assert_eq!(t.route(interned), &naive, "{name} node {v}");
                }
            }
        }
    }

    #[test]
    fn intern_route_round_trips() {
        let inst = gadgets::disagree();
        let t = RouteTable::new(&inst);
        assert_eq!(t.intern_route(&Route::empty()), Some(RouteId::EPSILON));
        for id in (0..t.len()).map(|i| RouteId(i as u32)) {
            assert_eq!(t.intern_route(t.route(id)), Some(id));
        }
        // A valid path permitted nowhere does not intern.
        let x = inst.node_by_name("x").unwrap();
        let y = inst.node_by_name("y").unwrap();
        let foreign = Path::new(vec![y, x, inst.dest()]).unwrap().prepend(NodeId(99));
        assert!(foreign.is_err() || t.intern_path(&foreign.unwrap()).is_none());
        let unpermitted = Path::new(vec![x, y, inst.dest()]).ok();
        // xyd IS permitted in DISAGREE; build one that is not: yd reversed.
        assert!(unpermitted.map(|p| t.intern_path(&p).is_some()).unwrap_or(false));
    }
}

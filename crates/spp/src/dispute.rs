//! Dispute wheels and the dispute digraph.
//!
//! Example A.1 recalls the Griffin–Shepherd–Wilfong result that multiple
//! stable solutions imply a *dispute wheel*, and that the absence of a
//! dispute wheel is the broadest known sufficient condition for convergence.
//! This module provides:
//!
//! * [`find_dispute_wheel`] — exact dispute-wheel detection via a cycle
//!   search over `(pivot node, spoke path)` states,
//! * [`dispute_digraph`] / [`digraph_is_acyclic`] — a lightweight
//!   *single-hop* dispute digraph in the spirit of GSW 2002: its acyclicity
//!   rules out every wheel whose rims extend the next spoke by one hop (the
//!   DISAGREE/BAD-GADGET pattern); longer rims are decided by the exact
//!   detector.

use std::collections::HashMap;

use crate::graph::NodeId;
use crate::instance::SppInstance;
use crate::path::Path;

/// One pivot of a dispute wheel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WheelPivot {
    /// The pivot node `u_i`.
    pub node: NodeId,
    /// The spoke path `Q_i ∈ P_{u_i}`.
    pub spoke: Path,
    /// The full rim path `R_i Q_{i+1} ∈ P_{u_i}`, weakly preferred to the
    /// spoke (`λ(R_i Q_{i+1}) ≤ λ(Q_i)`).
    pub rim: Path,
}

/// A dispute wheel: a cyclic sequence of pivots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisputeWheel {
    /// Pivots in wheel order; pivot `i`'s rim ends with pivot `i+1`'s spoke.
    pub pivots: Vec<WheelPivot>,
}

impl DisputeWheel {
    /// Renders the wheel with instance names for diagnostics.
    pub fn display(&self, inst: &SppInstance) -> String {
        let parts: Vec<String> = self
            .pivots
            .iter()
            .map(|p| {
                format!(
                    "{}[spoke {} rim {}]",
                    inst.name(p.node),
                    inst.fmt_path(&p.spoke),
                    inst.fmt_path(&p.rim)
                )
            })
            .collect();
        parts.join(" -> ")
    }

    /// Structural sanity check (used by tests): every rim is permitted at its
    /// pivot, weakly preferred to the spoke, and ends with the next pivot's
    /// spoke.
    pub fn verify(&self, inst: &SppInstance) -> bool {
        if self.pivots.is_empty() {
            return false;
        }
        for (i, p) in self.pivots.iter().enumerate() {
            let next = &self.pivots[(i + 1) % self.pivots.len()];
            let (Some(spoke_rank), Some(rim_rank)) =
                (inst.rank(p.node, &p.spoke), inst.rank(p.node, &p.rim))
            else {
                return false;
            };
            if rim_rank > spoke_rank {
                return false;
            }
            // The rim must be R_i · Q_{i+1} with a non-empty R_i.
            if !p.rim.has_suffix(&next.spoke) || p.rim.len() == next.spoke.len() {
                return false;
            }
        }
        true
    }
}

/// State of the wheel search: a `(node, spoke)` pair.
type SpokeState = (NodeId, Path);

/// Finds a dispute wheel if one exists (exact, polynomial in the number of
/// permitted paths).
///
/// The search graph has a state per `(node u, spoke Q ∈ P_u)` and an arc
/// `(u, Q_u) → (w, Q_w)` whenever some permitted path `W ∈ P_u` has proper
/// suffix `Q_w` and `λ_u(W) ≤ λ_u(Q_u)`; any cycle is exactly a dispute
/// wheel, and vice versa.
pub fn find_dispute_wheel(inst: &SppInstance) -> Option<DisputeWheel> {
    let states: Vec<SpokeState> = inst
        .nodes()
        .filter(|&v| v != inst.dest())
        .flat_map(|v| inst.permitted(v).iter().map(move |rp| (v, rp.path.clone())))
        .collect();
    let index: HashMap<&SpokeState, usize> =
        states.iter().enumerate().map(|(i, s)| (s, i)).collect();

    // Arcs, labeled with the rim path that witnesses them.
    let mut arcs: Vec<Vec<(usize, Path)>> = vec![Vec::new(); states.len()];
    for (si, (u, spoke)) in states.iter().enumerate() {
        let spoke_rank = inst.rank(*u, spoke).expect("spokes are permitted");
        for rp in inst.permitted(*u) {
            if rp.rank > spoke_rank {
                continue;
            }
            let w_path = &rp.path;
            // Every proper suffix of W starting strictly after u and before d
            // is a candidate next spoke Q_w at node w.
            for start in 1..w_path.len() - 1 {
                let w = w_path.as_slice()[start];
                let q = w_path.suffix(start);
                if let Some(&ti) = index.get(&(w, q.clone())) {
                    arcs[si].push((ti, w_path.clone()));
                }
            }
        }
    }

    // DFS cycle detection, recovering the cycle and its rim labels.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Gray,
        Black,
    }
    let mut mark = vec![Mark::White; states.len()];
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (state, next arc index)
    let mut path_states: Vec<usize> = Vec::new();
    let mut path_rims: Vec<Path> = Vec::new();

    for root in 0..states.len() {
        if mark[root] != Mark::White {
            continue;
        }
        mark[root] = Mark::Gray;
        stack.push((root, 0));
        path_states.push(root);
        while let Some(&(s, next)) = stack.last() {
            if next < arcs[s].len() {
                let (t, rim) = arcs[s][next].clone();
                stack.last_mut().expect("stack is non-empty").1 += 1;
                match mark[t] {
                    Mark::Gray => {
                        // Cycle found: states from t's position in path.
                        let pos = path_states
                            .iter()
                            .position(|&x| x == t)
                            .expect("gray states are on the path");
                        let mut pivots = Vec::new();
                        for (k, &si) in path_states[pos..].iter().enumerate() {
                            let (node, spoke) = states[si].clone();
                            let rim = if pos + k + 1 < path_states.len() {
                                path_rims[pos + k].clone()
                            } else {
                                rim.clone() // closing arc
                            };
                            pivots.push(WheelPivot { node, spoke, rim });
                        }
                        return Some(DisputeWheel { pivots });
                    }
                    Mark::White => {
                        mark[t] = Mark::Gray;
                        path_rims.push(rim);
                        stack.push((t, 0));
                        path_states.push(t);
                    }
                    Mark::Black => {}
                }
            } else {
                mark[s] = Mark::Black;
                stack.pop();
                path_states.pop();
                path_rims.pop();
            }
        }
    }
    None
}

/// `true` when the instance has no dispute wheel — the broadest known
/// sufficient condition for convergence of every fair execution.
pub fn is_wheel_free(inst: &SppInstance) -> bool {
    find_dispute_wheel(inst).is_none()
}

/// A node of the dispute digraph: a permitted path at some node.
pub type PathNode = (NodeId, Path);

/// Arc kinds of the dispute digraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisputeArc {
    /// `P → vP`: `v` may extend `P` (both permitted).
    Transmission,
    /// `P → Q`: adopting the extension `vP` at `v` displaces the
    /// less-preferred `Q ∈ P_v`.
    Dispute,
}

/// The single-hop dispute digraph: vertices are `(owner, permitted path)`
/// pairs, arcs as in [`DisputeArc`] — a lightweight diagnostic in the spirit
/// of GSW 2002 covering one-hop rims; [`find_dispute_wheel`] is the exact
/// detector.
#[derive(Debug, Clone)]
pub struct DisputeDigraph {
    /// Vertices in deterministic order.
    pub vertices: Vec<PathNode>,
    /// Adjacency: `edges[i]` lists `(target, kind)`.
    pub edges: Vec<Vec<(usize, DisputeArc)>>,
}

/// Builds the dispute digraph of an instance.
pub fn dispute_digraph(inst: &SppInstance) -> DisputeDigraph {
    let vertices: Vec<PathNode> = inst
        .nodes()
        .flat_map(|v| inst.permitted(v).iter().map(move |rp| (v, rp.path.clone())))
        .collect();
    let index: HashMap<&PathNode, usize> =
        vertices.iter().enumerate().map(|(i, p)| (p, i)).collect();
    let mut edges: Vec<Vec<(usize, DisputeArc)>> = vec![Vec::new(); vertices.len()];

    for (i, (u, p)) in vertices.iter().enumerate() {
        for &v in inst.graph().neighbors(*u) {
            let Ok(vp) = p.prepend(v) else { continue };
            let Some(vp_rank) = inst.rank(v, &vp) else { continue };
            // Transmission arc: P → vP.
            if let Some(&j) = index.get(&(v, vp.clone())) {
                edges[i].push((j, DisputeArc::Transmission));
            }
            // Dispute arcs: P → Q for every Q ∈ P_v weakly less preferred
            // than vP (v switching to vP displaces Q; weak preference covers
            // the same-next-hop ties Sec. 2.1 allows, making acyclicity a
            // complete test for single-hop wheels).
            for rq in inst.permitted(v) {
                if rq.rank >= vp_rank && rq.path != vp {
                    if let Some(&j) = index.get(&(v, rq.path.clone())) {
                        edges[i].push((j, DisputeArc::Dispute));
                    }
                }
            }
        }
    }
    DisputeDigraph { vertices, edges }
}

/// `true` if the single-hop dispute digraph has no cycle.
///
/// Acyclicity rules out every dispute wheel whose rims extend the next spoke
/// by exactly one hop (the DISAGREE/BAD-GADGET pattern). Wheels with longer
/// rims — whose interior extensions need not be permitted at intermediate
/// nodes — are invisible to this digraph; use [`find_dispute_wheel`] for the
/// exact decision.
pub fn digraph_is_acyclic(g: &DisputeDigraph) -> bool {
    // Iterative three-color DFS.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Gray,
        Black,
    }
    let mut mark = vec![Mark::White; g.vertices.len()];
    for root in 0..g.vertices.len() {
        if mark[root] != Mark::White {
            continue;
        }
        let mut stack = vec![(root, 0usize)];
        mark[root] = Mark::Gray;
        while let Some(&(s, next)) = stack.last() {
            if next < g.edges[s].len() {
                let (t, _) = g.edges[s][next];
                stack.last_mut().expect("stack is non-empty").1 += 1;
                match mark[t] {
                    Mark::Gray => return false,
                    Mark::White => {
                        mark[t] = Mark::Gray;
                        stack.push((t, 0));
                    }
                    Mark::Black => {}
                }
            } else {
                mark[s] = Mark::Black;
                stack.pop();
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets;

    #[test]
    fn disagree_has_a_wheel() {
        let inst = gadgets::disagree();
        let wheel = find_dispute_wheel(&inst).expect("DISAGREE has a dispute wheel");
        assert!(wheel.verify(&inst), "{}", wheel.display(&inst));
        assert_eq!(wheel.pivots.len(), 2);
    }

    #[test]
    fn bad_gadget_has_a_wheel() {
        let inst = gadgets::bad_gadget();
        let wheel = find_dispute_wheel(&inst).expect("BAD-GADGET has a dispute wheel");
        assert!(wheel.verify(&inst), "{}", wheel.display(&inst));
        assert_eq!(wheel.pivots.len(), 3);
    }

    #[test]
    fn good_gadget_is_wheel_free() {
        assert!(is_wheel_free(&gadgets::good_gadget()));
        assert!(is_wheel_free(&gadgets::line2()));
    }

    #[test]
    fn fig6_fig7_fig8_fig9_wheel_status() {
        // FIG6 contains a DISAGREE-like u/v dispute (the REO oscillation in
        // Example A.2 exploits it); FIG7–FIG9 carry no wheel (their
        // executions converge in every model — only *realizability* differs).
        assert!(!is_wheel_free(&gadgets::fig6()));
        assert!(is_wheel_free(&gadgets::fig7()));
        assert!(is_wheel_free(&gadgets::fig8()));
        assert!(is_wheel_free(&gadgets::fig9()));
    }

    #[test]
    fn digraph_agrees_with_wheel_detector_on_corpus() {
        for (name, inst) in gadgets::corpus() {
            let acyclic = digraph_is_acyclic(&dispute_digraph(&inst));
            let wheel_free = is_wheel_free(&inst);
            // Acyclicity is sufficient for wheel-freedom.
            if acyclic {
                assert!(wheel_free, "{name}: acyclic digraph but wheel found");
            }
            // On this corpus the two coincide exactly.
            assert_eq!(acyclic, wheel_free, "{name}");
        }
    }

    #[test]
    fn digraph_structure_on_disagree() {
        let inst = gadgets::disagree();
        let g = dispute_digraph(&inst);
        // Vertices: (d), xd, xyd, yd, yxd.
        assert_eq!(g.vertices.len(), 5);
        let has_dispute_arc = g.edges.iter().flatten().any(|(_, k)| *k == DisputeArc::Dispute);
        assert!(has_dispute_arc);
    }

    #[test]
    fn wheel_display_mentions_pivots() {
        let inst = gadgets::disagree();
        let wheel = find_dispute_wheel(&inst).unwrap();
        let s = wheel.display(&inst);
        assert!(s.contains("spoke"), "{s}");
        assert!(s.contains("rim"), "{s}");
    }

    #[test]
    fn verify_rejects_malformed_wheel() {
        let inst = gadgets::disagree();
        let x = inst.node_by_name("x").unwrap();
        let bogus = DisputeWheel {
            pivots: vec![WheelPivot {
                node: x,
                spoke: inst.parse_path("xd").unwrap(),
                rim: inst.parse_path("xd").unwrap(), // rim must strictly extend next spoke
            }],
        };
        assert!(!bogus.verify(&inst));
        assert!(!DisputeWheel { pivots: vec![] }.verify(&inst));
    }
}

//! Driving a runner to a verdict: convergence, a proven cycle, or a step
//! limit.

use std::collections::HashMap;

use routelab_spp::Route;

use crate::runner::{RunStats, Runner};
use crate::schedule::Scheduler;

/// The observed outcome of one concrete run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// A quiescent state was reached (all channels empty): the assignment
    /// can never change again.
    Converged {
        /// Steps executed.
        steps: usize,
        /// The final assignment π, indexed by node id.
        assignment: Vec<Route>,
    },
    /// The pair (network state, scheduler position) repeated: the run is
    /// provably periodic from `first_seen` with the given period.
    CycleDetected {
        /// Step at which the repeated configuration was first recorded.
        first_seen: usize,
        /// Cycle length in steps.
        period: usize,
        /// `true` when some π changes within the cycle — a genuine
        /// oscillation; `false` means periodic churn with a constant
        /// assignment, which per Definition 2.5 still converges.
        oscillating: bool,
    },
    /// The schedule was exhausted before quiescence (finite scripts).
    ScheduleExhausted {
        /// Steps executed.
        steps: usize,
    },
    /// `max_steps` elapsed without a verdict.
    StepLimit {
        /// Steps executed.
        steps: usize,
    },
}

/// A verdict together with the runner's cumulative counters — the engine's
/// per-run observability record (message/drop/step totals), consumed by the
/// simulation layer's JSON reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriveReport {
    /// The verdict.
    pub outcome: RunOutcome,
    /// Steps executed and messages sent / consumed / dropped over the run.
    pub stats: RunStats,
}

/// Like [`drive`], additionally snapshotting the runner's [`RunStats`] at
/// the moment of the verdict and — when telemetry is enabled — emitting the
/// engine's per-run counters and distributions. Telemetry is recorded once
/// per run rather than per step so the activation-step hot path stays free
/// of instrumentation calls.
pub fn drive_report<S: Scheduler>(
    runner: &mut Runner<'_>,
    scheduler: &mut S,
    max_steps: usize,
) -> DriveReport {
    let outcome = drive(runner, scheduler, max_steps);
    let stats = runner.stats();
    if routelab_obs::enabled() {
        routelab_obs::counter("engine.steps", stats.steps as u64);
        routelab_obs::counter("engine.msgs.sent", stats.sent as u64);
        routelab_obs::counter("engine.msgs.consumed", stats.consumed as u64);
        routelab_obs::counter("engine.msgs.dropped", stats.dropped as u64);
        routelab_obs::histogram("engine.run.steps", stats.steps as u64);
        routelab_obs::histogram("engine.run.queue_hwm", stats.max_queue_depth as u64);
        if matches!(outcome, RunOutcome::Converged { .. }) {
            routelab_obs::histogram("engine.run.converge_steps", stats.steps as u64);
        }
    }
    DriveReport { outcome, stats }
}

/// Drives `runner` with `scheduler` until a verdict or `max_steps`.
///
/// Cycle detection is sound because it keys on the pair of state fingerprint
/// and scheduler fingerprint: if the pair repeats, the future of the run is
/// exactly the segment between the repetitions, forever.
pub fn drive<S: Scheduler>(
    runner: &mut Runner<'_>,
    scheduler: &mut S,
    max_steps: usize,
) -> RunOutcome {
    let outcome = drive_inner(runner, scheduler, max_steps);
    if let Some(fl) = runner.flight() {
        let steps = runner.stats().steps as u64;
        match &outcome {
            RunOutcome::Converged { .. } => fl.end("converged", steps, None, None, None),
            RunOutcome::CycleDetected { first_seen, period, oscillating } => {
                // `first_seen` is relative to this drive call, but the trace
                // numbers steps over the whole run (a witness replay executes
                // its prefix before driving). Cycle detection returns after
                // exactly `first_seen + period` drive steps, so the offset of
                // this call within the run is recoverable from the total.
                let base = steps - (*first_seen + *period) as u64;
                fl.end(
                    "cycle",
                    steps,
                    Some(base + *first_seen as u64),
                    Some(*period as u64),
                    Some(*oscillating),
                )
            }
            RunOutcome::ScheduleExhausted { .. } => fl.end("exhausted", steps, None, None, None),
            RunOutcome::StepLimit { .. } => fl.end("step-limit", steps, None, None, None),
        }
    }
    outcome
}

fn drive_inner<S: Scheduler>(
    runner: &mut Runner<'_>,
    scheduler: &mut S,
    max_steps: usize,
) -> RunOutcome {
    // (state fp, scheduler fp) -> (step index, dedup'd trace length)
    let mut seen: HashMap<(u64, u64), (usize, usize)> = HashMap::new();
    let mut distinct_assignments = 1; // initial assignment
                                      // Randomized schedulers never repeat a fingerprint, so no pair can
                                      // recur: skip state fingerprinting and the seen-map entirely (the
                                      // verdicts are identical, the fingerprint work is the hot path's
                                      // dominant cost on large instances).
    let track_cycles = scheduler.may_repeat();

    for step_no in 0..max_steps {
        if runner.state().is_quiescent() {
            return RunOutcome::Converged {
                steps: step_no,
                assignment: runner.state().assignment(),
            };
        }
        if track_cycles {
            let key = (runner.state().fingerprint(), scheduler.fingerprint());
            if let Some(&(first_seen, assignments_then)) = seen.get(&key) {
                return RunOutcome::CycleDetected {
                    first_seen,
                    period: step_no - first_seen,
                    oscillating: distinct_assignments > assignments_then,
                };
            }
            seen.insert(key, (step_no, distinct_assignments));
        }

        let Some(step) = scheduler.next_step(&runner.state()) else {
            return RunOutcome::ScheduleExhausted { steps: step_no };
        };
        if runner.step_fast(&step) {
            distinct_assignments += 1;
        }
    }
    if runner.state().is_quiescent() {
        return RunOutcome::Converged { steps: max_steps, assignment: runner.state().assignment() };
    }
    RunOutcome::StepLimit { steps: max_steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Cyclic, RoundRobin, Scripted};
    use routelab_core::step::{ActivationStep, ChannelAction, NodeUpdate};
    use routelab_spp::{gadgets, Channel};

    #[test]
    fn good_gadget_converges_in_every_model() {
        let inst = gadgets::good_gadget();
        for model in routelab_core::model::CommModel::all() {
            let mut runner = Runner::new(&inst);
            let mut sched = RoundRobin::new(&inst, model);
            match drive(&mut runner, &mut sched, 10_000) {
                RunOutcome::Converged { assignment, .. } => {
                    let rendered: Vec<String> =
                        assignment.iter().map(|r| inst.fmt_route(r)).collect();
                    assert_eq!(rendered, vec!["d", "1d", "2d", "3d"], "{model}");
                }
                other => panic!("{model}: {other:?}"),
            }
        }
    }

    #[test]
    fn bad_gadget_cycles_under_round_robin() {
        // BAD-GADGET has no stable assignment, so the deterministic fair
        // round-robin run must hit a cycle with π changing inside it.
        let inst = gadgets::bad_gadget();
        for model in ["R1O", "RMS", "REA", "REO"] {
            let mut runner = Runner::new(&inst);
            let mut sched = RoundRobin::new(&inst, model.parse().unwrap());
            match drive(&mut runner, &mut sched, 100_000) {
                RunOutcome::CycleDetected { oscillating, period, .. } => {
                    assert!(oscillating, "{model}: cycle must oscillate");
                    assert!(period > 0);
                }
                other => panic!("{model}: expected a cycle, got {other:?}"),
            }
        }
    }

    #[test]
    fn scripted_exhaustion_reported() {
        let inst = gadgets::disagree();
        let x = inst.node_by_name("x").unwrap();
        let d = inst.dest();
        let step = ActivationStep::single(NodeUpdate::new(
            d,
            vec![ChannelAction::read_one(Channel::new(x, d))],
        ));
        let mut runner = Runner::new(&inst);
        let mut sched = Scripted::new(vec![step]);
        // After d's bootstrap announcement the network is not quiescent and
        // the script runs dry.
        match drive(&mut runner, &mut sched, 100) {
            RunOutcome::ScheduleExhausted { steps } => assert_eq!(steps, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cycle_without_pi_change_is_not_oscillating() {
        // A cyclic schedule of no-op steps (v polling an empty channel while
        // d never gets to announce): the state repeats but no π ever
        // changes, so the detected cycle is not an oscillation.
        let inst = gadgets::line2();
        let v = inst.node_by_name("v").unwrap();
        let d = inst.dest();
        let mut runner = Runner::new(&inst);
        let mut sched = Cyclic::new(vec![ActivationStep::single(NodeUpdate::new(
            v,
            vec![ChannelAction::read_one(Channel::new(d, v))],
        ))]);
        match drive(&mut runner, &mut sched, 100) {
            RunOutcome::CycleDetected { oscillating, period, .. } => {
                assert!(!oscillating);
                assert_eq!(period, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn step_limit_when_budget_tiny() {
        let inst = gadgets::bad_gadget();
        let mut runner = Runner::new(&inst);
        let mut sched = RoundRobin::new(&inst, "RMS".parse().unwrap());
        match drive(&mut runner, &mut sched, 2) {
            RunOutcome::StepLimit { steps } => assert_eq!(steps, 2),
            RunOutcome::Converged { .. } => {} // d-first order could quiesce
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn drive_report_exposes_counters() {
        let inst = gadgets::good_gadget();
        let mut runner = Runner::new(&inst);
        let mut sched = RoundRobin::new(&inst, "RMS".parse().unwrap());
        let report = drive_report(&mut runner, &mut sched, 10_000);
        assert!(matches!(report.outcome, RunOutcome::Converged { .. }));
        assert!(report.stats.sent > 0);
        assert_eq!(report.stats.dropped, 0, "reliable model never drops");
        assert_eq!(report.stats, runner.stats());
    }

    #[test]
    fn line2_converges_fast() {
        let inst = gadgets::line2();
        let mut runner = Runner::new(&inst);
        let mut sched = RoundRobin::new(&inst, "REA".parse().unwrap());
        match drive(&mut runner, &mut sched, 100) {
            RunOutcome::Converged { steps, assignment } => {
                assert!(steps <= 2 * inst.node_count() + 2);
                assert_eq!(inst.fmt_route(&assignment[1]), "vd");
            }
            other => panic!("{other:?}"),
        }
    }
}

//! FIFO channels and the `(f, g)` message-processing rule of Definition 2.3.

use std::collections::VecDeque;

use routelab_core::step::Take;
use routelab_spp::Route;

/// A FIFO communication channel holding route announcements (possibly ε —
/// withdrawals).
///
/// Messages are ordered oldest first; the processing rule consumes a prefix.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FifoChannel {
    queue: VecDeque<Route>,
}

/// Result of processing a channel with `(f(c), g(c))` (Definition 2.3,
/// steps 2(b)–2(d)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessOutcome {
    /// `i`: number of messages deleted from the head of the channel.
    pub consumed: usize,
    /// Number of consumed messages that were dropped (indices in `g`).
    pub dropped: usize,
    /// The route in the `j`-th message, where `j` is the largest non-dropped
    /// index `≤ i`; `None` when every processed message was dropped (or none
    /// was processed), in which case ρ keeps its previous value.
    pub learned: Option<Route>,
}

impl FifoChannel {
    /// An empty channel.
    pub fn new() -> Self {
        FifoChannel::default()
    }

    /// Number of queued messages (`m_c`).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Appends an announcement (Definition 2.3, step 4).
    pub fn push(&mut self, route: Route) {
        self.queue.push_back(route);
    }

    /// The `i`-th message (1-based, oldest first), if present.
    pub fn peek(&self, i: usize) -> Option<&Route> {
        if i == 0 {
            return None;
        }
        self.queue.get(i - 1)
    }

    /// Iterates oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Route> {
        self.queue.iter()
    }

    /// Discards every message except the newest. Used by the explorer as an
    /// exact state abstraction for reliable all-messages models, where a
    /// read always consumes the whole queue and learns only the newest
    /// message.
    pub fn collapse_to_newest(&mut self) {
        if self.queue.len() > 1 {
            let newest = self.queue.pop_back().expect("nonempty");
            self.queue.clear();
            self.queue.push_back(newest);
        }
    }

    /// Pops messages off the head while they equal `r`, returning how many
    /// were removed. Used by the explorer's absorbed-read normalization: a
    /// pending announcement equal to the reader's current ρ is consumed
    /// without observable effect, so the normal form removes it eagerly.
    pub fn pop_front_while_eq(&mut self, r: &Route) -> usize {
        let mut popped = 0;
        while self.queue.front() == Some(r) {
            self.queue.pop_front();
            popped += 1;
        }
        popped
    }

    /// Applies `f` to each queued message oldest-first, replacing those for
    /// which it returns a substitute; returns how many were replaced. Used
    /// by explorers that rewrite in-flight announcements into normal forms
    /// (the queue length never changes).
    pub fn rewrite<F>(&mut self, mut f: F) -> usize
    where
        F: FnMut(&Route) -> Option<Route>,
    {
        let mut changed = 0;
        for m in &mut self.queue {
            if let Some(r) = f(m) {
                *m = r;
                changed += 1;
            }
        }
        changed
    }

    /// Collapses the queue to a sorted, deduplicated set of routes and
    /// returns `true` when that changed anything. Used by the explorer as an
    /// exact abstraction for unreliable all-messages channels, where reads
    /// consume the whole queue and only the (arbitrary) surviving suffix
    /// matters — order and multiplicity are unobservable.
    pub fn collapse_to_set(&mut self) -> bool {
        let before = self.queue.len();
        let mut routes: Vec<Route> = std::mem::take(&mut self.queue).into();
        let sorted = routes.windows(2).all(|w| w[0] < w[1]);
        routes.sort_unstable();
        routes.dedup();
        let changed = routes.len() != before || !sorted;
        self.queue = routes.into();
        changed
    }

    /// Processes the channel with count `take` and 1-based drop set `drops`:
    /// computes `i = min(f, m_c)` (all of `m_c` for [`Take::All`]), learns
    /// the last non-dropped message among the first `i`, and deletes the
    /// first `i` messages.
    ///
    /// The paper's step 2(b) literally says `max{f(c), m_c(t)}`, which would
    /// delete more messages than exist; every example in Appendix A behaves
    /// as `min`, which is what we implement.
    pub fn process<I>(&mut self, take: Take, drops: I) -> ProcessOutcome
    where
        I: IntoIterator<Item = u32>,
    {
        let m = self.queue.len();
        let i = match take {
            Take::All => m,
            Take::Count(k) => (k as usize).min(m),
        };
        let drop_set: Vec<usize> =
            drops.into_iter().map(|d| d as usize).filter(|&d| d >= 1 && d <= i).collect();
        let mut learned = None;
        for j in (1..=i).rev() {
            if !drop_set.contains(&j) {
                learned = Some(self.queue[j - 1].clone());
                break;
            }
        }
        self.queue.drain(..i);
        ProcessOutcome { consumed: i, dropped: drop_set.len(), learned }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_spp::Path;

    fn r(ids: &[u32]) -> Route {
        Route::from(Path::from_ids(ids.iter().copied()).unwrap())
    }

    #[test]
    fn fifo_order_and_peek() {
        let mut c = FifoChannel::new();
        assert!(c.is_empty());
        c.push(r(&[1, 0]));
        c.push(r(&[2, 0]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(1), Some(&r(&[1, 0])));
        assert_eq!(c.peek(2), Some(&r(&[2, 0])));
        assert_eq!(c.peek(0), None);
        assert_eq!(c.peek(3), None);
    }

    #[test]
    fn process_one_keeps_head() {
        let mut c = FifoChannel::new();
        c.push(r(&[1, 0]));
        c.push(r(&[2, 0]));
        let out = c.process(Take::Count(1), []);
        assert_eq!(out, ProcessOutcome { consumed: 1, dropped: 0, learned: Some(r(&[1, 0])) });
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn process_all_learns_newest() {
        let mut c = FifoChannel::new();
        c.push(r(&[1, 0]));
        c.push(r(&[2, 0]));
        c.push(Route::empty());
        let out = c.process(Take::All, []);
        // The last message (a withdrawal) is what gets learned.
        assert_eq!(out.learned, Some(Route::empty()));
        assert_eq!(out.consumed, 3);
        assert!(c.is_empty());
    }

    #[test]
    fn count_caps_at_queue_length() {
        let mut c = FifoChannel::new();
        c.push(r(&[1, 0]));
        let out = c.process(Take::Count(5), []);
        assert_eq!(out.consumed, 1);
        assert_eq!(out.learned, Some(r(&[1, 0])));
        // Empty channel: nothing processed, nothing learned.
        let out = c.process(Take::Count(1), []);
        assert_eq!(out, ProcessOutcome { consumed: 0, dropped: 0, learned: None });
    }

    #[test]
    fn drops_skip_messages() {
        let mut c = FifoChannel::new();
        c.push(r(&[1, 0]));
        c.push(r(&[2, 0]));
        c.push(r(&[3, 0]));
        // Process 3, dropping the newest: learn the 2nd.
        let out = c.process(Take::Count(3), [3]);
        assert_eq!(out.learned, Some(r(&[2, 0])));
        assert_eq!(out.dropped, 1);
        assert_eq!(out.consumed, 3);
    }

    #[test]
    fn dropping_everything_learns_nothing() {
        let mut c = FifoChannel::new();
        c.push(r(&[1, 0]));
        c.push(r(&[2, 0]));
        let out = c.process(Take::Count(2), [1, 2]);
        assert_eq!(out.learned, None);
        assert_eq!(out.dropped, 2);
        assert!(c.is_empty());
    }

    #[test]
    fn drop_indices_beyond_i_ignored() {
        let mut c = FifoChannel::new();
        c.push(r(&[1, 0]));
        // f = 1 with a drop index 2: index 2 exceeds i = 1, so it is inert.
        let out = c.process(Take::Count(1), [2]);
        assert_eq!(out.learned, Some(r(&[1, 0])));
        assert_eq!(out.dropped, 0);
    }

    #[test]
    fn process_zero_is_noop() {
        let mut c = FifoChannel::new();
        c.push(r(&[1, 0]));
        let out = c.process(Take::Count(0), []);
        assert_eq!(out, ProcessOutcome { consumed: 0, dropped: 0, learned: None });
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn pop_front_while_eq_removes_matching_prefix() {
        let mut c = FifoChannel::new();
        c.push(r(&[1, 0]));
        c.push(r(&[1, 0]));
        c.push(r(&[2, 0]));
        c.push(r(&[1, 0]));
        assert_eq!(c.pop_front_while_eq(&r(&[1, 0])), 2);
        // Stops at the first non-matching message, even if more matches
        // follow deeper in the queue.
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(1), Some(&r(&[2, 0])));
        assert_eq!(c.pop_front_while_eq(&r(&[1, 0])), 0);
    }

    #[test]
    fn collapse_to_set_sorts_and_dedups() {
        let mut c = FifoChannel::new();
        c.push(r(&[2, 0]));
        c.push(Route::empty());
        c.push(r(&[2, 0]));
        c.push(r(&[1, 0]));
        assert!(c.collapse_to_set());
        let all: Vec<&Route> = c.iter().collect();
        assert_eq!(all, vec![&Route::empty(), &r(&[1, 0]), &r(&[2, 0])]);
        // Idempotent: a second collapse reports no change.
        assert!(!c.collapse_to_set());
        assert!(!FifoChannel::new().collapse_to_set());
    }

    #[test]
    fn iteration_is_oldest_first() {
        let mut c = FifoChannel::new();
        c.push(r(&[1, 0]));
        c.push(r(&[2, 0]));
        let all: Vec<&Route> = c.iter().collect();
        assert_eq!(all, vec![&r(&[1, 0]), &r(&[2, 0])]);
    }
}

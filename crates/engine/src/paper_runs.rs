//! The concrete executions printed in the paper's Appendix A, as scripted
//! activation sequences, with the expected per-step route choices.
//!
//! Each `a*` function returns a [`PaperRun`] whose `expected` list is the
//! paper's step table (active node, route it selects); [`verify`] executes
//! the script and checks every row. The oscillation suffixes of Examples
//! A.1 and A.2 are provided as cyclic schedules for
//! [`crate::outcome::drive`].

use routelab_core::step::{ActivationSeq, ActivationStep, ChannelAction, NodeUpdate};
use routelab_spp::{gadgets, Channel, NodeId, SppInstance};

use crate::index::ChannelIndex;
use crate::runner::Runner;

/// A scripted execution from the paper with its expected step table.
#[derive(Debug, Clone)]
pub struct PaperRun {
    /// Example name, e.g. `"A.2"`.
    pub name: &'static str,
    /// The model the script is legal in.
    pub model: &'static str,
    /// The instance (one of the Fig. 5–9 gadgets).
    pub instance: SppInstance,
    /// The scripted steps (1-based step `t` is `seq[t-1]`).
    pub seq: ActivationSeq,
    /// Per step: the active node's name and the paper-notation route it
    /// selects (`"ε"` for no route).
    pub expected: Vec<(&'static str, &'static str)>,
}

/// An `R1O` step: `node` reads one message from the channel from `from`.
pub fn r1o_step(inst: &SppInstance, node: &str, from: &str) -> ActivationStep {
    let v = inst.node_by_name(node).expect("node exists");
    let u = inst.node_by_name(from).expect("node exists");
    ActivationStep::single(NodeUpdate::new(v, vec![ChannelAction::read_one(Channel::new(u, v))]))
}

/// An `REO` step: `node` reads one message from every incoming channel.
pub fn reo_step(inst: &SppInstance, index: &ChannelIndex, node: &str) -> ActivationStep {
    let v = inst.node_by_name(node).expect("node exists");
    let actions =
        index.in_channels(v).iter().map(|&c| ChannelAction::read_one(index.channel(c))).collect();
    ActivationStep::single(NodeUpdate::new(v, actions))
}

/// An `REA` step: `node` reads all messages from every incoming channel.
pub fn rea_step(inst: &SppInstance, index: &ChannelIndex, node: &str) -> ActivationStep {
    let v = inst.node_by_name(node).expect("node exists");
    let actions =
        index.in_channels(v).iter().map(|&c| ChannelAction::read_all(index.channel(c))).collect();
    ActivationStep::single(NodeUpdate::new(v, actions))
}

/// Executes a [`PaperRun`] and checks the paper's step table row by row.
///
/// # Errors
///
/// Returns a human-readable description of the first mismatching step.
pub fn verify(run: &PaperRun) -> Result<(), String> {
    let mut runner = Runner::new(&run.instance);
    if run.seq.len() != run.expected.len() {
        return Err(format!(
            "{}: script has {} steps but {} expectations",
            run.name,
            run.seq.len(),
            run.expected.len()
        ));
    }
    for (t, (step, (node, want))) in run.seq.iter().zip(&run.expected).enumerate() {
        runner.step(step);
        let v = run
            .instance
            .node_by_name(node)
            .ok_or_else(|| format!("{}: unknown node {node}", run.name))?;
        if step.sole_node() != Some(v) {
            return Err(format!(
                "{}: step {} activates {:?}, expected {node}",
                run.name,
                t + 1,
                step.sole_node()
            ));
        }
        let got = run.instance.fmt_route(runner.state().chosen(v));
        if got != *want {
            return Err(format!(
                "{}: step {} node {node} chose {got}, paper says {want}",
                run.name,
                t + 1
            ));
        }
    }
    Ok(())
}

/// Example A.1: the R1O bootstrap of DISAGREE plus the 6-step fair cycle
/// that oscillates forever. Returns `(run, cycle)`; drive the cycle with
/// [`crate::schedule::Cyclic`] after replaying the run to witness the
/// oscillation.
pub fn a1_r1o() -> (PaperRun, ActivationSeq) {
    let inst = gadgets::disagree();
    let seq = vec![
        r1o_step(&inst, "d", "x"), // d activates (empty read) and announces d
        r1o_step(&inst, "x", "d"), // x -> xd
        r1o_step(&inst, "y", "d"), // y -> yd
        r1o_step(&inst, "x", "y"), // x learns yd -> xyd
        r1o_step(&inst, "y", "x"), // y learns xd -> yxd
    ];
    let expected = vec![("d", "d"), ("x", "xd"), ("y", "yd"), ("x", "xyd"), ("y", "yxd")];
    // The fair cycle: x and y keep exchanging announcements while every
    // other channel is attended (the d-facing reads are no-ops).
    let cycle = vec![
        r1o_step(&inst, "x", "y"),
        r1o_step(&inst, "y", "x"),
        r1o_step(&inst, "d", "x"),
        r1o_step(&inst, "d", "y"),
        r1o_step(&inst, "x", "d"),
        r1o_step(&inst, "y", "d"),
    ];
    (PaperRun { name: "A.1", model: "R1O", instance: inst, seq, expected }, cycle)
}

/// Example A.2: the 13-step REO prefix of Fig. 6 (table on p. 23) plus the
/// 3-step cycle (`v`, `u`, `a`) whose repetition is the DISAGREE-style
/// oscillation between `u` and `v`.
pub fn a2_reo() -> (PaperRun, ActivationSeq) {
    let inst = gadgets::fig6();
    let index = ChannelIndex::new(inst.graph());
    let order = ["d", "x", "a", "u", "v", "y", "a", "u", "v", "z", "a", "v", "u"];
    let seq: ActivationSeq = order.iter().map(|n| reo_step(&inst, &index, n)).collect();
    let expected = vec![
        ("d", "d"),
        ("x", "xd"),
        ("a", "axd"),
        ("u", "uaxd"),
        ("v", "vuaxd"),
        ("y", "yd"),
        ("a", "ayd"),
        ("u", "ε"),
        ("v", "vayd"),
        ("z", "zd"),
        ("a", "azd"),
        ("v", "vazd"),
        ("u", "uazd"),
    ];
    let cycle = ["v", "u", "a"].iter().map(|n| reo_step(&inst, &index, n)).collect();
    (PaperRun { name: "A.2", model: "REO", instance: inst, seq, expected }, cycle)
}

/// Example A.3: the 10-step REO execution of Fig. 7 whose path-assignment
/// sequence cannot be exactly realized in R1O.
pub fn a3_reo() -> PaperRun {
    let inst = gadgets::fig7();
    let index = ChannelIndex::new(inst.graph());
    let order = ["d", "b", "u", "v", "a", "u", "v", "s", "s", "s"];
    let seq: ActivationSeq = order.iter().map(|n| reo_step(&inst, &index, n)).collect();
    let expected = vec![
        ("d", "d"),
        ("b", "bd"),
        ("u", "ubd"),
        ("v", "vbd"),
        ("a", "ad"),
        ("u", "uad"),
        ("v", "vad"),
        ("s", "subd"),
        ("s", "suad"),
        ("s", "suad"),
    ];
    PaperRun { name: "A.3", model: "REO", instance: inst, seq, expected }
}

/// Example A.4: the 6-step REA execution of Fig. 8 that R1O cannot realize
/// with repetition (it can as a subsequence).
pub fn a4_rea() -> PaperRun {
    let inst = gadgets::fig8();
    let index = ChannelIndex::new(inst.graph());
    let order = ["d", "a", "u", "b", "u", "s"];
    let seq: ActivationSeq = order.iter().map(|n| rea_step(&inst, &index, n)).collect();
    let expected =
        vec![("d", "d"), ("a", "ad"), ("u", "uad"), ("b", "bd"), ("u", "ubd"), ("s", "subd")];
    PaperRun { name: "A.4", model: "REA", instance: inst, seq, expected }
}

/// Example A.5: the 8-step REA execution of Fig. 9 that R1S cannot realize
/// exactly (the same sequence is also a legal REO execution, giving
/// Prop. 3.13).
pub fn a5_rea() -> PaperRun {
    let inst = gadgets::fig9();
    let index = ChannelIndex::new(inst.graph());
    let order = ["d", "b", "c", "x", "s", "a", "c", "s"];
    let seq: ActivationSeq = order.iter().map(|n| rea_step(&inst, &index, n)).collect();
    let expected = vec![
        ("d", "d"),
        ("b", "bd"),
        ("c", "cbd"),
        ("x", "xd"),
        ("s", "scbd"),
        ("a", "ad"),
        ("c", "cad"),
        ("s", "sxd"),
    ];
    PaperRun { name: "A.5", model: "REA", instance: inst, seq, expected }
}

/// Example A.6: DISAGREE under R1A with *multiple* simultaneous updaters —
/// the polling oscillation impossible with one updater per step. Returns
/// the instance, the 2-step bootstrap, and the 2-step cycle.
pub fn a6_multinode() -> (SppInstance, ActivationSeq, ActivationSeq) {
    let inst = gadgets::disagree();
    let d = inst.dest();
    let x = inst.node_by_name("x").expect("x exists");
    let y = inst.node_by_name("y").expect("y exists");
    let read_all = |from: NodeId, to: NodeId| ChannelAction::read_all(Channel::new(from, to));
    // t=1: d activates (processing one of its channels, per R1A).
    let boot = vec![
        ActivationStep::single(NodeUpdate::new(d, vec![read_all(x, d)])),
        // t=2: x and y simultaneously poll their channels from d.
        ActivationStep::simultaneous(vec![
            NodeUpdate::new(x, vec![read_all(d, x)]),
            NodeUpdate::new(y, vec![read_all(d, y)]),
        ]),
    ];
    // t=3,5,7,…: both poll each other; t=4,6,…: both poll d (no-ops). The
    // destination's own polls are interleaved so that every channel is
    // attended within the cycle (its reads drain x's and y's announcements
    // without affecting any route choice).
    let cycle = vec![
        ActivationStep::simultaneous(vec![
            NodeUpdate::new(x, vec![read_all(y, x)]),
            NodeUpdate::new(y, vec![read_all(x, y)]),
        ]),
        ActivationStep::single(NodeUpdate::new(d, vec![read_all(x, d)])),
        ActivationStep::simultaneous(vec![
            NodeUpdate::new(x, vec![read_all(d, x)]),
            NodeUpdate::new(y, vec![read_all(d, y)]),
        ]),
        ActivationStep::single(NodeUpdate::new(d, vec![read_all(y, d)])),
    ];
    (inst, boot, cycle)
}

/// All single-node scripted runs with step tables (A.1–A.5).
pub fn all_runs() -> Vec<PaperRun> {
    vec![a1_r1o().0, a2_reo().0, a3_reo(), a4_rea(), a5_rea()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{drive, RunOutcome};
    use crate::schedule::Cyclic;
    use routelab_core::validate::check_sequence;

    #[test]
    fn every_run_matches_the_paper_table() {
        for run in all_runs() {
            verify(&run).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn scripts_are_legal_in_their_models() {
        for run in all_runs() {
            let model = run.model.parse().unwrap();
            check_sequence(model, run.instance.graph(), &run.seq)
                .unwrap_or_else(|(t, e)| panic!("{} step {t}: {e}", run.name));
        }
        let (run, cycle) = a1_r1o();
        check_sequence("R1O".parse().unwrap(), run.instance.graph(), &cycle).unwrap();
        let (run, cycle) = a2_reo();
        check_sequence("REO".parse().unwrap(), run.instance.graph(), &cycle).unwrap();
    }

    #[test]
    fn a1_oscillates_forever_under_the_fair_cycle() {
        let (run, cycle) = a1_r1o();
        let mut runner = Runner::new(&run.instance);
        runner.run(&run.seq);
        let mut sched = Cyclic::new(cycle);
        match drive(&mut runner, &mut sched, 10_000) {
            RunOutcome::CycleDetected { oscillating, period, .. } => {
                assert!(oscillating, "A.1 cycle must change path assignments");
                assert!(period % 6 == 0, "period {period} should be whole cycles");
            }
            other => panic!("expected oscillation, got {other:?}"),
        }
    }

    #[test]
    fn a2_oscillates_forever_under_the_fair_cycle() {
        let (run, cycle) = a2_reo();
        let mut runner = Runner::new(&run.instance);
        runner.run(&run.seq);
        let mut sched = Cyclic::new(cycle);
        match drive(&mut runner, &mut sched, 10_000) {
            RunOutcome::CycleDetected { oscillating, .. } => {
                assert!(oscillating, "A.2 cycle must change path assignments");
            }
            other => panic!("expected oscillation, got {other:?}"),
        }
    }

    #[test]
    fn a2_oscillation_alternates_u_v_between_direct_and_indirect() {
        // "as u and v alternately activate, they will oscillate between
        // their direct and indirect routes."
        let (run, cycle) = a2_reo();
        let inst = run.instance.clone();
        let u = inst.node_by_name("u").unwrap();
        let v = inst.node_by_name("v").unwrap();
        let mut runner = Runner::new(&run.instance);
        runner.run(&run.seq);
        let mut sched = Cyclic::new(cycle);
        drive(&mut runner, &mut sched, 300);
        let mut u_routes: Vec<String> = runner
            .trace()
            .iter()
            .skip(run.seq.len())
            .map(|pi| inst.fmt_route(&pi[u.index()]))
            .collect();
        let mut v_routes: Vec<String> = runner
            .trace()
            .iter()
            .skip(run.seq.len())
            .map(|pi| inst.fmt_route(&pi[v.index()]))
            .collect();
        u_routes.sort();
        u_routes.dedup();
        v_routes.sort();
        v_routes.dedup();
        assert_eq!(u_routes, ["uazd", "uvazd"]);
        assert_eq!(v_routes, ["vazd", "vuazd"]);
    }

    #[test]
    fn a6_multinode_polling_oscillates() {
        let (inst, boot, cycle) = a6_multinode();
        let mut runner = Runner::new(&inst);
        runner.run(&boot);
        let x = inst.node_by_name("x").unwrap();
        let y = inst.node_by_name("y").unwrap();
        assert_eq!(inst.fmt_route(runner.state().chosen(x)), "xd");
        assert_eq!(inst.fmt_route(runner.state().chosen(y)), "yd");
        let mut sched = Cyclic::new(cycle);
        match drive(&mut runner, &mut sched, 1_000) {
            RunOutcome::CycleDetected { oscillating, .. } => assert!(oscillating),
            other => panic!("expected oscillation, got {other:?}"),
        }
        // The paper's table: x alternates xd / xyd, y alternates yd / yxd.
        let mut x_routes: Vec<String> = runner
            .trace()
            .iter()
            .skip(boot_len())
            .map(|pi| inst.fmt_route(&pi[x.index()]))
            .collect();
        x_routes.sort();
        x_routes.dedup();
        assert_eq!(x_routes, ["xd", "xyd"]);
    }

    fn boot_len() -> usize {
        2
    }

    #[test]
    fn a3_final_states_differ_between_reo_and_r1o_variant() {
        // The R1O line of the A.3 table: same first 9 assignments, then s
        // switches to svbd at t=10 when it finally reads the stale vbd.
        let run = a3_reo();
        let inst = run.instance.clone();
        // Replay the REO script's first 7 steps as R1O-compatible reads
        // (each touched channel holds at most one message, so reading one
        // channel at a time reaches the same state), then do the R1O tail.
        let seq = vec![
            r1o_step(&inst, "d", "a"),
            r1o_step(&inst, "b", "d"),
            r1o_step(&inst, "u", "b"),
            r1o_step(&inst, "v", "b"),
            r1o_step(&inst, "a", "d"),
            r1o_step(&inst, "u", "a"),
            r1o_step(&inst, "v", "a"),
            r1o_step(&inst, "s", "u"), // reads ubd -> subd
            r1o_step(&inst, "s", "u"), // reads uad -> suad
            r1o_step(&inst, "s", "v"), // reads vbd -> svbd (the extra state)
        ];
        let mut runner = Runner::new(&inst);
        runner.run(&seq);
        let s = inst.node_by_name("s").unwrap();
        assert_eq!(inst.fmt_route(runner.state().chosen(s)), "svbd");
    }
}

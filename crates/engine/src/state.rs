//! The complete network state (Definition 2.1).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use routelab_spp::{NodeId, Path, Route, SppInstance};

use crate::channel::FifoChannel;
use crate::index::ChannelIndex;

/// Everything Definition 2.1 tracks: path assignments π, known routes ρ,
/// channel contents — plus each node's last announcement, which determines
/// whether step 4 writes an update.
///
/// The initial state has `π_d = (d)` and `π_v = ε` otherwise, all ρ = ε, all
/// channels empty, and *nothing announced yet*: the destination's first
/// activation therefore announces `(d)` (as in every Appendix A example),
/// resolving the bootstrap ambiguity in Definition 2.3's "π changed" test.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NetworkState {
    /// π: the route each node currently chooses.
    chosen: Vec<Route>,
    /// Each node's last written announcement (ε = nothing announced yet).
    announced: Vec<Route>,
    /// ρ, indexed by dense channel id: the last route successfully processed
    /// from that channel.
    learned: Vec<Route>,
    /// Channel contents, indexed by dense channel id.
    queues: Vec<FifoChannel>,
}

impl NetworkState {
    /// The initial state for an instance.
    pub fn initial(inst: &SppInstance, index: &ChannelIndex) -> Self {
        let n = inst.node_count();
        let mut chosen = vec![Route::empty(); n];
        chosen[inst.dest().index()] = Route::path(Path::trivial(inst.dest()));
        NetworkState {
            chosen,
            announced: vec![Route::empty(); n],
            learned: vec![Route::empty(); index.len()],
            queues: vec![FifoChannel::new(); index.len()],
        }
    }

    /// π_v.
    pub fn chosen(&self, v: NodeId) -> &Route {
        &self.chosen[v.index()]
    }

    /// The full assignment π (indexed by node id).
    pub fn assignment(&self) -> Vec<Route> {
        self.chosen.clone()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.chosen.len()
    }

    /// `v`'s last announcement (ε before the first one).
    pub fn announced(&self, v: NodeId) -> &Route {
        &self.announced[v.index()]
    }

    /// ρ for the channel with dense id `c`.
    pub fn learned(&self, c: usize) -> &Route {
        &self.learned[c]
    }

    /// The queue of the channel with dense id `c`.
    pub fn queue(&self, c: usize) -> &FifoChannel {
        &self.queues[c]
    }

    /// Total messages in flight.
    pub fn messages_in_flight(&self) -> usize {
        self.queues.iter().map(FifoChannel::len).sum()
    }

    /// `true` when every channel is empty *and* every node's choice equals
    /// its last announcement — a quiescent state. Because a node re-chooses
    /// in the same step in which it reads, and has nothing new to announce,
    /// no future step can change any π or send any message: the network has
    /// converged. (The second condition matters only before the
    /// destination's first activation, which still owes its bootstrap
    /// announcement.)
    pub fn is_quiescent(&self) -> bool {
        self.queues.iter().all(FifoChannel::is_empty) && self.chosen == self.announced
    }

    /// Length of the longest queue (used for channel-bound bookkeeping).
    pub fn max_queue_len(&self) -> usize {
        self.queues.iter().map(FifoChannel::len).max().unwrap_or(0)
    }

    /// A 64-bit fingerprint of the full state (for cycle detection).
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }

    pub(crate) fn chosen_mut(&mut self, v: NodeId) -> &mut Route {
        &mut self.chosen[v.index()]
    }

    pub(crate) fn announced_mut(&mut self, v: NodeId) -> &mut Route {
        &mut self.announced[v.index()]
    }

    pub(crate) fn learned_mut(&mut self, c: usize) -> &mut Route {
        &mut self.learned[c]
    }

    pub(crate) fn queue_mut(&mut self, c: usize) -> &mut FifoChannel {
        &mut self.queues[c]
    }

    /// Rebuilds a state from its four components (the inverse of the
    /// accessor view). This is the decode hook for external state codecs —
    /// exhaustive explorers intern states in packed form and reconstruct
    /// them on demand — and performs no validation beyond shape: `chosen`
    /// and `announced` must have one entry per node, `learned` and `queues`
    /// one entry per dense channel id, with each queue oldest-first.
    pub fn from_parts(
        chosen: Vec<Route>,
        announced: Vec<Route>,
        learned: Vec<Route>,
        queues: Vec<Vec<Route>>,
    ) -> Self {
        debug_assert_eq!(chosen.len(), announced.len());
        debug_assert_eq!(learned.len(), queues.len());
        let queues = queues
            .into_iter()
            .map(|routes| {
                let mut q = FifoChannel::new();
                for r in routes {
                    q.push(r);
                }
                q
            })
            .collect();
        NetworkState { chosen, announced, learned, queues }
    }

    /// Collapses every queue to its newest message. An exact abstraction
    /// (bisimulation) for reliable all-messages models (`R1A`, `RMA`,
    /// `REA`): every read consumes the whole queue and ρ becomes its newest
    /// message, so older entries can never influence the execution.
    pub fn collapse_queues_to_newest(&mut self) {
        for q in &mut self.queues {
            q.collapse_to_newest();
        }
    }

    /// Collapses one channel's queue to its newest message (the per-channel
    /// form of [`NetworkState::collapse_queues_to_newest`], for models whose
    /// channels mix read policies).
    pub fn collapse_queue_to_newest(&mut self, c: usize) {
        self.queues[c].collapse_to_newest();
    }

    /// Pops channel `c`'s head messages while they equal the channel's ρ and
    /// returns how many were removed. Reading such a message leaves ρ — and
    /// therefore the reader's choice — unchanged, so the explorer's
    /// absorbed-read normalization consumes it eagerly.
    pub fn absorb_queue_head(&mut self, c: usize) -> usize {
        self.queues[c].pop_front_while_eq(&self.learned[c])
    }

    /// Collapses channel `c`'s queue to a sorted deduplicated set; returns
    /// `true` when anything changed. Exact for unreliable all-messages
    /// channels (see [`FifoChannel::collapse_to_set`]).
    pub fn collapse_queue_to_set(&mut self, c: usize) -> bool {
        self.queues[c].collapse_to_set()
    }

    /// Applies `f` to channel `c`'s ρ and to each of its queued messages,
    /// replacing entries for which it returns a substitute; returns how
    /// many were replaced. Used by explorers that project routes onto
    /// observational-equivalence representatives.
    pub fn rewrite_channel_routes<F>(&mut self, c: usize, mut f: F) -> usize
    where
        F: FnMut(&Route) -> Option<Route>,
    {
        let mut changed = 0;
        if let Some(r) = f(&self.learned[c]) {
            self.learned[c] = r;
            changed += 1;
        }
        changed + self.queues[c].rewrite(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_spp::gadgets;

    #[test]
    fn initial_state_matches_definition_2_1() {
        let inst = gadgets::disagree();
        let idx = ChannelIndex::new(inst.graph());
        let s = NetworkState::initial(&inst, &idx);
        assert_eq!(s.chosen(inst.dest()), &Route::path(Path::trivial(inst.dest())));
        let x = inst.node_by_name("x").unwrap();
        assert!(s.chosen(x).is_epsilon());
        assert!(s.announced(inst.dest()).is_epsilon());
        for c in 0..idx.len() {
            assert!(s.learned(c).is_epsilon());
            assert!(s.queue(c).is_empty());
        }
        // Not quiescent: the destination still owes its bootstrap
        // announcement (chosen (d) ≠ announced ε).
        assert!(!s.is_quiescent());
        assert_eq!(s.messages_in_flight(), 0);
        assert_eq!(s.max_queue_len(), 0);
    }

    #[test]
    fn fingerprint_distinguishes_states() {
        let inst = gadgets::disagree();
        let idx = ChannelIndex::new(inst.graph());
        let a = NetworkState::initial(&inst, &idx);
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.queue_mut(0).push(Route::empty());
        assert_ne!(a, b);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert!(!b.is_quiescent());
        assert_eq!(b.max_queue_len(), 1);
    }

    #[test]
    fn from_parts_round_trips() {
        let inst = gadgets::disagree();
        let idx = ChannelIndex::new(inst.graph());
        let mut s = NetworkState::initial(&inst, &idx);
        s.queue_mut(0).push(Route::empty());
        s.queue_mut(0).push(Route::path(Path::trivial(inst.dest())));
        *s.learned_mut(1) = Route::path(Path::trivial(inst.dest()));
        let rebuilt = NetworkState::from_parts(
            s.assignment(),
            (0..inst.node_count()).map(|v| s.announced(NodeId(v as u32)).clone()).collect(),
            (0..idx.len()).map(|c| s.learned(c).clone()).collect(),
            (0..idx.len()).map(|c| s.queue(c).iter().cloned().collect()).collect(),
        );
        assert_eq!(s, rebuilt);
    }

    #[test]
    fn assignment_snapshot() {
        let inst = gadgets::disagree();
        let idx = ChannelIndex::new(inst.graph());
        let s = NetworkState::initial(&inst, &idx);
        let pi = s.assignment();
        assert_eq!(pi.len(), 3);
        assert!(pi[1].is_epsilon());
    }
}

//! A stateful driver that executes steps over the interned hot path and
//! records the path-assignment trace.
//!
//! The runner owns an [`InternedState`] and a [`RouteTable`] (built once per
//! instance, or shared across runners via [`Runner::with_table`]). Steps
//! execute entirely over dense [`routelab_spp::RouteId`]s; routes are
//! decoded back to [`Route`] values only at the trace / flight-recorder /
//! [`StateView`] boundary, so all visible output is byte-identical to the
//! route-value engine while the hot path allocates nothing in steady state.

use std::ops::Deref;

use routelab_core::step::{ActivationSeq, ActivationStep};
use routelab_spp::{NodeId, Route, RouteId, RouteTable, SppInstance};

use crate::exec::StepEffect;
use crate::index::ChannelIndex;
use crate::interned::{execute_step_interned, InternedEffect, InternedState};
use crate::schedule::SchedState;
use crate::state::NetworkState;
use crate::trace::PathTrace;

/// Cumulative statistics over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Steps executed.
    pub steps: usize,
    /// Messages consumed from channels.
    pub consumed: usize,
    /// Messages dropped.
    pub dropped: usize,
    /// Messages sent.
    pub sent: usize,
    /// Steps in which some π changed.
    pub changing_steps: usize,
    /// Largest queue length any single channel reached (high-water mark).
    pub max_queue_depth: usize,
}

/// Either owns the route table (built in [`Runner::new`]) or borrows one
/// shared across runners ([`Runner::with_table`] — Monte Carlo builds each
/// cell's table once and lends it to every run).
#[derive(Debug, Clone)]
enum TableRef<'a> {
    Owned(Box<RouteTable>),
    Borrowed(&'a RouteTable),
}

impl Deref for TableRef<'_> {
    type Target = RouteTable;

    fn deref(&self) -> &RouteTable {
        match self {
            TableRef::Owned(t) => t,
            TableRef::Borrowed(t) => t,
        }
    }
}

/// A read-only view of the runner's state that decodes interned ids to
/// routes on demand. `Copy` — pass it by value; the accessors hand out
/// references that live as long as the runner borrow, not the view.
#[derive(Debug, Clone, Copy)]
pub struct StateView<'r> {
    state: &'r InternedState,
    table: &'r RouteTable,
}

impl<'r> StateView<'r> {
    /// π_v.
    pub fn chosen(&self, v: NodeId) -> &'r Route {
        self.table.route(self.state.chosen(v))
    }

    /// `v`'s last announcement (ε before the first one).
    pub fn announced(&self, v: NodeId) -> &'r Route {
        self.table.route(self.state.announced(v))
    }

    /// ρ for the channel with dense id `c`.
    pub fn learned(&self, c: usize) -> &'r Route {
        self.table.route(self.state.learned(c))
    }

    /// The queue of the channel with dense id `c`, oldest first.
    pub fn queue(&self, c: usize) -> QueueView<'r> {
        QueueView { q: self.state.queue(c), table: self.table }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.state.node_count()
    }

    /// The full assignment π (indexed by node id).
    pub fn assignment(&self) -> Vec<Route> {
        (0..self.state.node_count()).map(|i| self.chosen(NodeId(i as u32)).clone()).collect()
    }

    /// Total messages in flight (O(1)).
    pub fn messages_in_flight(&self) -> usize {
        self.state.messages_in_flight()
    }

    /// Length of the longest queue.
    pub fn max_queue_len(&self) -> usize {
        self.state.max_queue_len()
    }

    /// `true` when no future step can change any π or send any message
    /// (see [`NetworkState::is_quiescent`]); O(1) here.
    pub fn is_quiescent(&self) -> bool {
        self.state.is_quiescent()
    }

    /// A 64-bit fingerprint of the full state (for cycle detection).
    pub fn fingerprint(&self) -> u64 {
        self.state.fingerprint()
    }

    /// Decodes the full state into a route-value [`NetworkState`] (the
    /// bridge to consumers of the reference engine, e.g. explorers).
    pub fn to_network_state(&self) -> NetworkState {
        let n = self.state.node_count();
        let c = self.state.channel_count();
        NetworkState::from_parts(
            self.assignment(),
            (0..n).map(|i| self.announced(NodeId(i as u32)).clone()).collect(),
            (0..c).map(|i| self.learned(i).clone()).collect(),
            (0..c).map(|i| self.queue(i).iter().cloned().collect()).collect(),
        )
    }
}

impl SchedState for StateView<'_> {
    fn node_count(&self) -> usize {
        self.state.node_count()
    }

    fn queue_len(&self, c: usize) -> usize {
        self.state.queue(c).len()
    }
}

/// A decoding view of one channel's queue.
#[derive(Debug, Clone, Copy)]
pub struct QueueView<'r> {
    q: &'r std::collections::VecDeque<RouteId>,
    table: &'r RouteTable,
}

impl<'r> QueueView<'r> {
    /// Queued messages.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// The queued routes, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &'r Route> + 'r {
        let table = self.table;
        self.q.iter().map(move |&id| table.route(id))
    }
}

/// Owns an [`InternedState`] for one instance, executes activation steps,
/// and records the [`PathTrace`] (initial assignment at index 0, then one
/// entry per step — unless tracing is disabled via [`Runner::tracing`]).
#[derive(Debug, Clone)]
pub struct Runner<'a> {
    inst: &'a SppInstance,
    index: ChannelIndex,
    table: TableRef<'a>,
    state: InternedState,
    trace: PathTrace,
    /// When `false`, steps skip the per-step assignment decode and the
    /// trace stays at the initial entry (Monte Carlo's mode).
    tracing: bool,
    stats: RunStats,
    /// Channels whose most recent processing dropped a message with nothing
    /// delivered since — if the run ends like this, it violates the drop
    /// half of fairness (Definition 2.4).
    pending_drop: Vec<bool>,
    /// Flight-recorder handle: `Some` only when tracing is enabled, in which
    /// case every step's causal record is emitted. Recording only observes —
    /// results are bit-identical with tracing on or off.
    flight: Option<routelab_obs::RunTrace>,
    /// Reusable step-effect buffers (cleared at the start of every step).
    effect: InternedEffect,
}

impl<'a> Runner<'a> {
    /// A runner in the initial state, building its own route table.
    pub fn new(inst: &'a SppInstance) -> Self {
        Runner::build(inst, TableRef::Owned(Box::new(RouteTable::new(inst))))
    }

    /// A runner borrowing a prebuilt route table (which must have been
    /// built from `inst`). Lets many runs over one instance share the
    /// interning work.
    pub fn with_table(inst: &'a SppInstance, table: &'a RouteTable) -> Self {
        Runner::build(inst, TableRef::Borrowed(table))
    }

    fn build(inst: &'a SppInstance, table: TableRef<'a>) -> Self {
        let index = ChannelIndex::new(inst.graph());
        let state = InternedState::initial(&table, &index);
        let mut trace = PathTrace::new();
        trace.push(decode_assignment(&table, &state));
        let pending_drop = vec![false; index.len()];
        let flight = flight_begin(inst, &index);
        Runner {
            inst,
            index,
            table,
            state,
            trace,
            tracing: true,
            stats: RunStats::default(),
            pending_drop,
            flight,
            effect: InternedEffect::default(),
        }
    }

    /// Enables or disables per-step trace recording (on by default).
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// The instance under execution.
    pub fn instance(&self) -> &SppInstance {
        self.inst
    }

    /// The channel index (shared with schedulers and transformations).
    pub fn index(&self) -> &ChannelIndex {
        &self.index
    }

    /// The route table interning this instance's permitted paths.
    pub fn table(&self) -> &RouteTable {
        &self.table
    }

    /// A decoding view of the current network state.
    pub fn state(&self) -> StateView<'_> {
        StateView { state: &self.state, table: &self.table }
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &PathTrace {
        &self.trace
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Executes one step entirely over interned ids and returns whether any
    /// π changed. This is the hot path: no route values are materialized
    /// unless tracing or flight recording is on.
    pub fn step_fast(&mut self, step: &ActivationStep) -> bool {
        execute_step_interned(&self.table, &self.index, &mut self.state, step, &mut self.effect);
        self.stats.steps += 1;
        self.stats.consumed += self.effect.consumed;
        self.stats.dropped += self.effect.dropped;
        self.stats.sent += self.effect.sent;
        let changed = !self.effect.changed.is_empty();
        if changed {
            self.stats.changing_steps += 1;
        }
        // Queues only grow where phase 3 wrote, so checking those channels
        // alone keeps the high-water mark exact without an O(channels) scan.
        for &c in &self.effect.sent_on {
            self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.state.queue(c).len());
        }
        for &c in &self.effect.dropped_on {
            self.pending_drop[c] = true;
        }
        for &c in &self.effect.kept_on {
            self.pending_drop[c] = false;
        }
        if self.tracing {
            self.trace.push(decode_assignment(&self.table, &self.state));
        }
        if let Some(fl) = &self.flight {
            self.flight_step(fl, step);
        }
        changed
    }

    /// Executes one step and decodes its full effect (route values for the
    /// π changes). Use [`Runner::step_fast`] where the decoded effect is
    /// not needed.
    pub fn step(&mut self, step: &ActivationStep) -> StepEffect {
        self.step_fast(step);
        let table: &RouteTable = &self.table;
        StepEffect {
            changed: self
                .effect
                .changed
                .iter()
                .map(|&(v, old, new)| (v, table.route(old).clone(), table.route(new).clone()))
                .collect(),
            consumed: self.effect.consumed,
            dropped: self.effect.dropped,
            sent: self.effect.sent,
            sent_on: self.effect.sent_on.clone(),
            attended: self.effect.attended.clone(),
            kept_on: self.effect.kept_on.clone(),
            dropped_on: self.effect.dropped_on.clone(),
        }
    }

    /// Flight-recorder handle for this run (when tracing is enabled).
    pub fn flight(&self) -> Option<&routelab_obs::RunTrace> {
        self.flight.as_ref()
    }

    /// Emits one step's causal record: activated nodes, π adoptions and
    /// withdrawals, and per-channel send/deliver/drop events.
    fn flight_step(&self, fl: &routelab_obs::RunTrace, step: &ActivationStep) {
        let table: &RouteTable = &self.table;
        let nodes: Vec<u32> = step.updates.iter().map(|u| u.node.0).collect();
        let pi: Vec<(u32, String, String)> = self
            .effect
            .changed
            .iter()
            .map(|&(v, old, new)| {
                (v.0, self.inst.fmt_route(table.route(old)), self.inst.fmt_route(table.route(new)))
            })
            .collect();
        // Phase 3 pushed `announced(from)` onto every channel in `sent_on`,
        // so reading it back after the step names the route each message
        // carries.
        let sent: Vec<(u32, String)> = self
            .effect
            .sent_on
            .iter()
            .map(|&c| {
                let from = self.index.channel(c).from;
                (c as u32, self.inst.fmt_route(table.route(self.state.announced(from))))
            })
            .collect();
        let delivered: Vec<u32> = self.effect.kept_on.iter().map(|&c| c as u32).collect();
        let dropped: Vec<u32> = self.effect.dropped_on.iter().map(|&c| c as u32).collect();
        fl.step(
            self.stats.steps as u64 - 1,
            &routelab_obs::StepRecord {
                nodes: &nodes,
                pi: &pi,
                sent: &sent,
                delivered: &delivered,
                dropped: &dropped,
            },
        );
    }

    /// `true` when some channel's latest processed message was dropped with
    /// nothing delivered afterwards. A run that *ends* in this state is not
    /// a prefix of any fair execution: Definition 2.4 requires a later
    /// non-dropped message on that channel. (With unreliable channels a
    /// network can reach quiescence this way — converged, but unfairly.)
    pub fn has_dangling_drops(&self) -> bool {
        self.pending_drop.iter().any(|&p| p)
    }

    /// Executes a whole finite sequence.
    pub fn run(&mut self, seq: &ActivationSeq) -> Vec<StepEffect> {
        seq.iter().map(|s| self.step(s)).collect()
    }

    /// Resets to the initial state, clearing trace and statistics. When
    /// tracing, a reset begins a fresh run trace so steps of distinct
    /// logical runs never share a run id.
    pub fn reset(&mut self) {
        self.state = InternedState::initial(&self.table, &self.index);
        self.trace = PathTrace::new();
        self.trace.push(decode_assignment(&self.table, &self.state));
        self.stats = RunStats::default();
        self.pending_drop = vec![false; self.index.len()];
        self.flight = flight_begin(self.inst, &self.index);
    }

    /// Convenience: executes `seq` on a fresh runner and returns the trace.
    pub fn trace_of(inst: &SppInstance, seq: &ActivationSeq) -> PathTrace {
        let mut r = Runner::new(inst);
        r.run(seq);
        r.trace
    }
}

/// Decodes the full assignment π into route values.
fn decode_assignment(table: &RouteTable, state: &InternedState) -> Vec<Route> {
    (0..state.node_count()).map(|i| table.route(state.chosen(NodeId(i as u32))).clone()).collect()
}

/// Opens a flight-recorder run trace with this instance's node/channel
/// directory; `None` when tracing is disabled (the common case — one relaxed
/// atomic load).
fn flight_begin(inst: &SppInstance, index: &ChannelIndex) -> Option<routelab_obs::RunTrace> {
    if !routelab_obs::trace_enabled() {
        return None;
    }
    let names: Vec<&str> =
        (0..inst.node_count()).map(|i| inst.name(routelab_spp::NodeId(i as u32))).collect();
    let chans: Vec<(u32, u32)> = index.channels().iter().map(|c| (c.from.0, c.to.0)).collect();
    let label = format!("{} nodes, dest {}", inst.node_count(), inst.name(inst.dest()));
    routelab_obs::trace_run_begin(&label, &names, &chans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_core::step::{ChannelAction, NodeUpdate};
    use routelab_spp::gadgets;

    fn poll_step(inst: &SppInstance, idx: &ChannelIndex, name: &str) -> ActivationStep {
        let v = inst.node_by_name(name).unwrap();
        let actions =
            idx.in_channels(v).iter().map(|&c| ChannelAction::read_all(idx.channel(c))).collect();
        ActivationStep::single(NodeUpdate::new(v, actions))
    }

    #[test]
    fn trace_starts_with_initial_assignment() {
        let inst = gadgets::disagree();
        let r = Runner::new(&inst);
        assert_eq!(r.trace().len(), 1);
        let pi0 = r.trace().get(0).unwrap();
        assert_eq!(inst.fmt_route(&pi0[0]), "d");
        assert_eq!(inst.fmt_route(&pi0[1]), "ε");
    }

    #[test]
    fn stats_accumulate() {
        let inst = gadgets::disagree();
        let mut r = Runner::new(&inst);
        let idx = r.index().clone();
        r.step(&poll_step(&inst, &idx, "d"));
        r.step(&poll_step(&inst, &idx, "x"));
        let s = r.stats();
        assert_eq!(s.steps, 2);
        assert_eq!(s.sent, 4); // d announces twice, x announces twice
        assert_eq!(s.consumed, 1);
        assert_eq!(s.changing_steps, 1); // only x's step changed a π
        assert_eq!(s.max_queue_depth, 1); // no channel ever held two messages
        assert_eq!(r.trace().len(), 3);
    }

    #[test]
    fn queue_high_water_mark_tracks_unconsumed_announcements() {
        // Drive DISAGREE so x announces twice (xd, then xyd) while y never
        // reads channel x→y: that channel reaches depth 2.
        let inst = gadgets::disagree();
        let mut r = Runner::new(&inst);
        let idx = r.index().clone();
        let d = inst.dest();
        let x = inst.node_by_name("x").unwrap();
        let y = inst.node_by_name("y").unwrap();
        let read = |from, to| ChannelAction::read_all(routelab_spp::Channel::new(from, to));
        for step in [
            ActivationStep::single(NodeUpdate::new(d, vec![])), // d announces (d)
            ActivationStep::single(NodeUpdate::new(x, vec![read(d, x)])), // x -> xd
            ActivationStep::single(NodeUpdate::new(y, vec![read(d, y)])), // y -> yd
            ActivationStep::single(NodeUpdate::new(x, vec![read(y, x)])), // x -> xyd
        ] {
            r.step(&step);
        }
        assert_eq!(r.stats().max_queue_depth, 2);
        let xy = idx.id(routelab_spp::Channel::new(x, y)).unwrap();
        assert_eq!(r.state().queue(xy).len(), 2);
    }

    #[test]
    fn reset_restores_everything() {
        let inst = gadgets::disagree();
        let mut r = Runner::new(&inst);
        let idx = r.index().clone();
        r.step(&poll_step(&inst, &idx, "d"));
        r.reset();
        assert_eq!(r.trace().len(), 1);
        assert_eq!(r.stats(), RunStats::default());
        assert_eq!(r.state().messages_in_flight(), 0);
    }

    #[test]
    fn run_sequence_equals_individual_steps() {
        let inst = gadgets::disagree();
        let idx = ChannelIndex::new(inst.graph());
        let seq = vec![
            poll_step(&inst, &idx, "d"),
            poll_step(&inst, &idx, "x"),
            poll_step(&inst, &idx, "y"),
        ];
        let t1 = Runner::trace_of(&inst, &seq);
        let mut r = Runner::new(&inst);
        for s in &seq {
            r.step(s);
        }
        assert_eq!(&t1, r.trace());
        assert_eq!(t1.len(), 4);
    }

    #[test]
    fn disagree_converges_under_d_x_y_polling() {
        // With REA-style polling in order d, x, y the network settles into
        // the stable solution (d, xd, yxd).
        let inst = gadgets::disagree();
        let idx = ChannelIndex::new(inst.graph());
        let mut r = Runner::new(&inst);
        for name in ["d", "x", "y", "x", "y", "d"] {
            r.step(&poll_step(&inst, &idx, name));
        }
        let last = r.trace().last().unwrap();
        let rendered: Vec<String> = last.iter().map(|p| inst.fmt_route(p)).collect();
        assert_eq!(rendered, vec!["d", "xd", "yxd"]);
        assert!(r.state().is_quiescent());
    }

    #[test]
    fn simple_channel_poll_step_helper_shape() {
        let inst = gadgets::fig6();
        let idx = ChannelIndex::new(inst.graph());
        let s = poll_step(&inst, &idx, "a");
        // a has 5 neighbors: x, y, z, u, v.
        assert_eq!(s.actions().count(), 5);
        // This helper emits a legal REA step.
        routelab_core::validate::check_step("REA".parse().unwrap(), inst.graph(), &s).unwrap();
    }

    #[test]
    fn shared_table_runner_matches_owned_table_runner() {
        let inst = gadgets::disagree();
        let table = RouteTable::new(&inst);
        let idx = ChannelIndex::new(inst.graph());
        let seq: Vec<ActivationStep> =
            ["d", "x", "y", "x", "y", "d"].iter().map(|n| poll_step(&inst, &idx, n)).collect();
        let mut owned = Runner::new(&inst);
        let mut shared = Runner::with_table(&inst, &table);
        for s in &seq {
            owned.step(s);
            shared.step(s);
        }
        assert_eq!(owned.trace(), shared.trace());
        assert_eq!(owned.stats(), shared.stats());
        assert_eq!(owned.state().fingerprint(), shared.state().fingerprint());
    }

    #[test]
    fn untraced_runner_keeps_stats_but_not_trace() {
        let inst = gadgets::disagree();
        let idx = ChannelIndex::new(inst.graph());
        let mut traced = Runner::new(&inst);
        let mut fast = Runner::new(&inst).tracing(false);
        for name in ["d", "x", "y", "x", "y", "d"] {
            let step = poll_step(&inst, &idx, name);
            traced.step(&step);
            assert_eq!(fast.step_fast(&step), {
                let t = traced.trace();
                t.get(t.len() - 1) != t.get(t.len() - 2)
            });
        }
        assert_eq!(fast.trace().len(), 1);
        assert_eq!(fast.stats(), traced.stats());
        assert!(fast.state().is_quiescent());
        assert_eq!(fast.state().assignment(), traced.state().assignment());
    }

    #[test]
    fn state_view_round_trips_to_network_state() {
        let inst = gadgets::disagree();
        let idx = ChannelIndex::new(inst.graph());
        let mut r = Runner::new(&inst);
        r.step(&poll_step(&inst, &idx, "d"));
        r.step(&poll_step(&inst, &idx, "x"));
        let ns = r.state().to_network_state();
        assert_eq!(ns.assignment(), r.state().assignment());
        assert_eq!(ns.messages_in_flight(), r.state().messages_in_flight());
        for c in 0..idx.len() {
            assert_eq!(ns.learned(c), r.state().learned(c));
            let decoded: Vec<&Route> = r.state().queue(c).iter().collect();
            assert_eq!(ns.queue(c).len(), decoded.len());
            for (a, b) in ns.queue(c).iter().zip(decoded) {
                assert_eq!(a, b);
            }
        }
        assert_eq!(ns.is_quiescent(), r.state().is_quiescent());
    }
}

//! A stateful driver that executes steps and records the path-assignment
//! trace.

use routelab_core::step::{ActivationSeq, ActivationStep};
use routelab_spp::SppInstance;

use crate::exec::{execute_step, StepEffect};
use crate::index::ChannelIndex;
use crate::state::NetworkState;
use crate::trace::PathTrace;

/// Cumulative statistics over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Steps executed.
    pub steps: usize,
    /// Messages consumed from channels.
    pub consumed: usize,
    /// Messages dropped.
    pub dropped: usize,
    /// Messages sent.
    pub sent: usize,
    /// Steps in which some π changed.
    pub changing_steps: usize,
    /// Largest queue length any single channel reached (high-water mark).
    pub max_queue_depth: usize,
}

/// Owns a [`NetworkState`] for one instance, executes activation steps, and
/// records the [`PathTrace`] (initial assignment at index 0, then one entry
/// per step).
#[derive(Debug, Clone)]
pub struct Runner<'a> {
    inst: &'a SppInstance,
    index: ChannelIndex,
    state: NetworkState,
    trace: PathTrace,
    stats: RunStats,
    /// Channels whose most recent processing dropped a message with nothing
    /// delivered since — if the run ends like this, it violates the drop
    /// half of fairness (Definition 2.4).
    pending_drop: Vec<bool>,
    /// Flight-recorder handle: `Some` only when tracing is enabled, in which
    /// case every step's causal record is emitted. Recording only observes —
    /// results are bit-identical with tracing on or off.
    flight: Option<routelab_obs::RunTrace>,
}

impl<'a> Runner<'a> {
    /// A runner in the initial state.
    pub fn new(inst: &'a SppInstance) -> Self {
        let index = ChannelIndex::new(inst.graph());
        let state = NetworkState::initial(inst, &index);
        let mut trace = PathTrace::new();
        trace.push(state.assignment());
        let pending_drop = vec![false; index.len()];
        let flight = flight_begin(inst, &index);
        Runner { inst, index, state, trace, stats: RunStats::default(), pending_drop, flight }
    }

    /// The instance under execution.
    pub fn instance(&self) -> &SppInstance {
        self.inst
    }

    /// The channel index (shared with schedulers and transformations).
    pub fn index(&self) -> &ChannelIndex {
        &self.index
    }

    /// The current network state.
    pub fn state(&self) -> &NetworkState {
        &self.state
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &PathTrace {
        &self.trace
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Executes one step, recording the resulting assignment.
    pub fn step(&mut self, step: &ActivationStep) -> StepEffect {
        let effect = execute_step(self.inst, &self.index, &mut self.state, step);
        self.trace.push(self.state.assignment());
        self.stats.steps += 1;
        self.stats.consumed += effect.consumed;
        self.stats.dropped += effect.dropped;
        self.stats.sent += effect.sent;
        if !effect.changed.is_empty() {
            self.stats.changing_steps += 1;
        }
        // Queues only grow where phase 3 wrote, so checking those channels
        // alone keeps the high-water mark exact without an O(channels) scan.
        for &c in &effect.sent_on {
            self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.state.queue(c).len());
        }
        for &c in &effect.dropped_on {
            self.pending_drop[c] = true;
        }
        for &c in &effect.kept_on {
            self.pending_drop[c] = false;
        }
        if let Some(fl) = &self.flight {
            self.flight_step(fl, step, &effect);
        }
        effect
    }

    /// Flight-recorder handle for this run (when tracing is enabled).
    pub fn flight(&self) -> Option<&routelab_obs::RunTrace> {
        self.flight.as_ref()
    }

    /// Emits one step's causal record: activated nodes, π adoptions and
    /// withdrawals, and per-channel send/deliver/drop events.
    fn flight_step(&self, fl: &routelab_obs::RunTrace, step: &ActivationStep, effect: &StepEffect) {
        let nodes: Vec<u32> = step.updates.iter().map(|u| u.node.0).collect();
        let pi: Vec<(u32, String, String)> = effect
            .changed
            .iter()
            .map(|(v, old, new)| (v.0, self.inst.fmt_route(old), self.inst.fmt_route(new)))
            .collect();
        // Phase 3 pushed `announced(from)` onto every channel in `sent_on`,
        // so reading it back after the step names the route each message
        // carries.
        let sent: Vec<(u32, String)> = effect
            .sent_on
            .iter()
            .map(|&c| {
                let from = self.index.channel(c).from;
                (c as u32, self.inst.fmt_route(self.state.announced(from)))
            })
            .collect();
        let delivered: Vec<u32> = effect.kept_on.iter().map(|&c| c as u32).collect();
        let dropped: Vec<u32> = effect.dropped_on.iter().map(|&c| c as u32).collect();
        fl.step(
            self.stats.steps as u64 - 1,
            &routelab_obs::StepRecord {
                nodes: &nodes,
                pi: &pi,
                sent: &sent,
                delivered: &delivered,
                dropped: &dropped,
            },
        );
    }

    /// `true` when some channel's latest processed message was dropped with
    /// nothing delivered afterwards. A run that *ends* in this state is not
    /// a prefix of any fair execution: Definition 2.4 requires a later
    /// non-dropped message on that channel. (With unreliable channels a
    /// network can reach quiescence this way — converged, but unfairly.)
    pub fn has_dangling_drops(&self) -> bool {
        self.pending_drop.iter().any(|&p| p)
    }

    /// Executes a whole finite sequence.
    pub fn run(&mut self, seq: &ActivationSeq) -> Vec<StepEffect> {
        seq.iter().map(|s| self.step(s)).collect()
    }

    /// Resets to the initial state, clearing trace and statistics. When
    /// tracing, a reset begins a fresh run trace so steps of distinct
    /// logical runs never share a run id.
    pub fn reset(&mut self) {
        self.state = NetworkState::initial(self.inst, &self.index);
        self.trace = PathTrace::new();
        self.trace.push(self.state.assignment());
        self.stats = RunStats::default();
        self.pending_drop = vec![false; self.index.len()];
        self.flight = flight_begin(self.inst, &self.index);
    }

    /// Convenience: executes `seq` on a fresh runner and returns the trace.
    pub fn trace_of(inst: &SppInstance, seq: &ActivationSeq) -> PathTrace {
        let mut r = Runner::new(inst);
        r.run(seq);
        r.trace
    }
}

/// Opens a flight-recorder run trace with this instance's node/channel
/// directory; `None` when tracing is disabled (the common case — one relaxed
/// atomic load).
fn flight_begin(inst: &SppInstance, index: &ChannelIndex) -> Option<routelab_obs::RunTrace> {
    if !routelab_obs::trace_enabled() {
        return None;
    }
    let names: Vec<&str> =
        (0..inst.node_count()).map(|i| inst.name(routelab_spp::NodeId(i as u32))).collect();
    let chans: Vec<(u32, u32)> = index.channels().iter().map(|c| (c.from.0, c.to.0)).collect();
    let label = format!("{} nodes, dest {}", inst.node_count(), inst.name(inst.dest()));
    routelab_obs::trace_run_begin(&label, &names, &chans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_core::step::{ChannelAction, NodeUpdate};
    use routelab_spp::gadgets;

    fn poll_step(inst: &SppInstance, idx: &ChannelIndex, name: &str) -> ActivationStep {
        let v = inst.node_by_name(name).unwrap();
        let actions =
            idx.in_channels(v).iter().map(|&c| ChannelAction::read_all(idx.channel(c))).collect();
        ActivationStep::single(NodeUpdate::new(v, actions))
    }

    #[test]
    fn trace_starts_with_initial_assignment() {
        let inst = gadgets::disagree();
        let r = Runner::new(&inst);
        assert_eq!(r.trace().len(), 1);
        let pi0 = r.trace().get(0).unwrap();
        assert_eq!(inst.fmt_route(&pi0[0]), "d");
        assert_eq!(inst.fmt_route(&pi0[1]), "ε");
    }

    #[test]
    fn stats_accumulate() {
        let inst = gadgets::disagree();
        let mut r = Runner::new(&inst);
        let idx = r.index().clone();
        r.step(&poll_step(&inst, &idx, "d"));
        r.step(&poll_step(&inst, &idx, "x"));
        let s = r.stats();
        assert_eq!(s.steps, 2);
        assert_eq!(s.sent, 4); // d announces twice, x announces twice
        assert_eq!(s.consumed, 1);
        assert_eq!(s.changing_steps, 1); // only x's step changed a π
        assert_eq!(s.max_queue_depth, 1); // no channel ever held two messages
        assert_eq!(r.trace().len(), 3);
    }

    #[test]
    fn queue_high_water_mark_tracks_unconsumed_announcements() {
        // Drive DISAGREE so x announces twice (xd, then xyd) while y never
        // reads channel x→y: that channel reaches depth 2.
        let inst = gadgets::disagree();
        let mut r = Runner::new(&inst);
        let idx = r.index().clone();
        let d = inst.dest();
        let x = inst.node_by_name("x").unwrap();
        let y = inst.node_by_name("y").unwrap();
        let read = |from, to| ChannelAction::read_all(routelab_spp::Channel::new(from, to));
        for step in [
            ActivationStep::single(NodeUpdate::new(d, vec![])), // d announces (d)
            ActivationStep::single(NodeUpdate::new(x, vec![read(d, x)])), // x -> xd
            ActivationStep::single(NodeUpdate::new(y, vec![read(d, y)])), // y -> yd
            ActivationStep::single(NodeUpdate::new(x, vec![read(y, x)])), // x -> xyd
        ] {
            r.step(&step);
        }
        assert_eq!(r.stats().max_queue_depth, 2);
        let xy = idx.id(routelab_spp::Channel::new(x, y)).unwrap();
        assert_eq!(r.state().queue(xy).len(), 2);
    }

    #[test]
    fn reset_restores_everything() {
        let inst = gadgets::disagree();
        let mut r = Runner::new(&inst);
        let idx = r.index().clone();
        r.step(&poll_step(&inst, &idx, "d"));
        r.reset();
        assert_eq!(r.trace().len(), 1);
        assert_eq!(r.stats(), RunStats::default());
        assert_eq!(r.state().messages_in_flight(), 0);
    }

    #[test]
    fn run_sequence_equals_individual_steps() {
        let inst = gadgets::disagree();
        let idx = ChannelIndex::new(inst.graph());
        let seq = vec![
            poll_step(&inst, &idx, "d"),
            poll_step(&inst, &idx, "x"),
            poll_step(&inst, &idx, "y"),
        ];
        let t1 = Runner::trace_of(&inst, &seq);
        let mut r = Runner::new(&inst);
        for s in &seq {
            r.step(s);
        }
        assert_eq!(&t1, r.trace());
        assert_eq!(t1.len(), 4);
    }

    #[test]
    fn disagree_converges_under_d_x_y_polling() {
        // With REA-style polling in order d, x, y the network settles into
        // the stable solution (d, xd, yxd).
        let inst = gadgets::disagree();
        let idx = ChannelIndex::new(inst.graph());
        let mut r = Runner::new(&inst);
        for name in ["d", "x", "y", "x", "y", "d"] {
            r.step(&poll_step(&inst, &idx, name));
        }
        let last = r.trace().last().unwrap();
        let rendered: Vec<String> = last.iter().map(|p| inst.fmt_route(p)).collect();
        assert_eq!(rendered, vec!["d", "xd", "yxd"]);
        assert!(r.state().is_quiescent());
    }

    #[test]
    fn simple_channel_poll_step_helper_shape() {
        let inst = gadgets::fig6();
        let idx = ChannelIndex::new(inst.graph());
        let s = poll_step(&inst, &idx, "a");
        // a has 5 neighbors: x, y, z, u, v.
        assert_eq!(s.actions().count(), 5);
        // This helper emits a legal REA step.
        routelab_core::validate::check_step("REA".parse().unwrap(), inst.graph(), &s).unwrap();
    }
}

//! The interned hot path: network state and step execution over
//! [`RouteId`]s.
//!
//! [`InternedState`] mirrors [`crate::NetworkState`] exactly — π, last
//! announcements, per-channel ρ, FIFO queues — but stores dense
//! [`RouteId`]s instead of owned [`routelab_spp::Route`] values, so
//! messages are `Copy` and an activation step allocates nothing in steady
//! state. [`execute_step_interned`] is a line-for-line mirror of
//! [`crate::exec::execute_step`]: phase 1 processes channels with the
//! `(f, g)` rule, phase 2 re-chooses via the precomputed extension tables
//! (a min over in-channels of preference positions), and phase 3 announces
//! changes. The [`crate::runner::Runner`] decodes ids back to routes only
//! at the rendering/trace boundary, keeping all visible output
//! byte-identical to the route-value engine.

use std::collections::VecDeque;

use routelab_core::step::{ActivationStep, Take};
use routelab_spp::{NodeId, RouteId, RouteTable, NO_CANDIDATE};

use crate::index::ChannelIndex;

/// What one interned step did — the [`crate::StepEffect`] mirror with
/// `Copy` route ids, plus reusable buffers so steady-state steps allocate
/// nothing. Cleared at the start of every step.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InternedEffect {
    /// Nodes whose π changed: `(node, old, new)`.
    pub changed: Vec<(NodeId, RouteId, RouteId)>,
    /// Messages deleted from channels.
    pub consumed: usize,
    /// Messages dropped (subset of `consumed`).
    pub dropped: usize,
    /// Messages written to channels.
    pub sent: usize,
    /// Dense channel ids written in phase 3, one entry per message.
    pub sent_on: Vec<usize>,
    /// Dense channel ids this step attended (targeted with `f ≥ 1`).
    pub attended: Vec<usize>,
    /// Dense channel ids on which a message was processed and kept.
    pub kept_on: Vec<usize>,
    /// Dense channel ids on which at least one message was dropped.
    pub dropped_on: Vec<usize>,
    /// Phase-2 scratch: each updater's decision, in update order.
    pub decisions: Vec<(NodeId, RouteId)>,
}

impl InternedEffect {
    fn clear(&mut self) {
        self.changed.clear();
        self.consumed = 0;
        self.dropped = 0;
        self.sent = 0;
        self.sent_on.clear();
        self.attended.clear();
        self.kept_on.clear();
        self.dropped_on.clear();
        self.decisions.clear();
    }
}

/// [`crate::NetworkState`] with interned routes and O(1) quiescence.
///
/// Two counters make [`InternedState::is_quiescent`] constant-time: the
/// total number of in-flight messages and the number of nodes whose choice
/// differs from their last announcement (phase 3 always re-equalizes the
/// two for every updated node, so the counter only ever decrements there).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternedState {
    chosen: Vec<RouteId>,
    announced: Vec<RouteId>,
    learned: Vec<RouteId>,
    queues: Vec<VecDeque<RouteId>>,
    in_flight: usize,
    mismatched: usize,
}

impl InternedState {
    /// The initial state: `π_d` is the trivial path, everything else ε,
    /// nothing announced, all channels empty (so only the destination's
    /// owed bootstrap announcement keeps the state non-quiescent).
    pub fn initial(table: &RouteTable, index: &ChannelIndex) -> Self {
        let n = table.node_count();
        let mut chosen = vec![RouteId::EPSILON; n];
        chosen[table.dest().index()] = table.dest_choice();
        InternedState {
            chosen,
            announced: vec![RouteId::EPSILON; n],
            learned: vec![RouteId::EPSILON; index.len()],
            queues: vec![VecDeque::new(); index.len()],
            in_flight: 0,
            mismatched: 1,
        }
    }

    /// π_v.
    pub fn chosen(&self, v: NodeId) -> RouteId {
        self.chosen[v.index()]
    }

    /// `v`'s last announcement (ε before the first one).
    pub fn announced(&self, v: NodeId) -> RouteId {
        self.announced[v.index()]
    }

    /// ρ for the channel with dense id `c`.
    pub fn learned(&self, c: usize) -> RouteId {
        self.learned[c]
    }

    /// The queue of the channel with dense id `c`, oldest first.
    pub fn queue(&self, c: usize) -> &VecDeque<RouteId> {
        &self.queues[c]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.chosen.len()
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.queues.len()
    }

    /// Total messages in flight (O(1)).
    pub fn messages_in_flight(&self) -> usize {
        self.in_flight
    }

    /// Length of the longest queue.
    pub fn max_queue_len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).max().unwrap_or(0)
    }

    /// O(1) quiescence: no message in flight and every node's choice equals
    /// its last announcement (see [`crate::NetworkState::is_quiescent`]).
    pub fn is_quiescent(&self) -> bool {
        self.in_flight == 0 && self.mismatched == 0
    }

    /// A 64-bit FNV-1a fingerprint of the full state (for cycle
    /// detection). Values differ from [`crate::NetworkState::fingerprint`]
    /// but are only ever compared within one run.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut write = |x: u32| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for &r in &self.chosen {
            write(r.0);
        }
        for &r in &self.announced {
            write(r.0);
        }
        for &r in &self.learned {
            write(r.0);
        }
        for q in &self.queues {
            write(q.len() as u32);
            for &r in q {
                write(r.0);
            }
        }
        h
    }
}

/// Executes one activation step over interned state, writing its effect
/// into the caller's reusable buffers. Semantics mirror
/// [`crate::exec::execute_step`] exactly (including duplicate drop-index
/// counting and the oldest-first learned scan).
///
/// # Panics
///
/// Panics if an action references a channel absent from `index`.
pub fn execute_step_interned(
    table: &RouteTable,
    index: &ChannelIndex,
    state: &mut InternedState,
    step: &ActivationStep,
    effect: &mut InternedEffect,
) {
    effect.clear();

    // Phase 1: collect updates of path information (all nodes in U).
    for update in &step.updates {
        for action in &update.actions {
            let cid = index
                .id(action.channel())
                .expect("activation step references a channel of the graph");
            if action.attends() {
                effect.attended.push(cid);
            }
            let q = &mut state.queues[cid];
            let m = q.len();
            let i = match action.take() {
                Take::All => m,
                Take::Count(k) => (k as usize).min(m),
            };
            let drops = action.drops();
            // Duplicate drop indices count twice, exactly as in
            // FifoChannel::process (its drop set is a plain list).
            let dropped = drops.iter().filter(|&&d| d >= 1 && (d as usize) <= i).count();
            let mut learned = None;
            for j in (1..=i).rev() {
                if !drops.iter().any(|&d| d as usize == j) {
                    learned = Some(q[j - 1]);
                    break;
                }
            }
            q.drain(..i);
            state.in_flight -= i;
            effect.consumed += i;
            effect.dropped += dropped;
            if dropped > 0 {
                effect.dropped_on.push(cid);
            }
            if let Some(r) = learned {
                state.learned[cid] = r;
                effect.kept_on.push(cid);
            }
        }
    }

    // Phase 2: choose the most preferred path from the known routes — a
    // min over in-channels of precomputed preference positions.
    for update in &step.updates {
        let v = update.node;
        let choice = if v == table.dest() {
            table.dest_choice()
        } else {
            let mut best = NO_CANDIDATE;
            for &cid in index.in_channels(v) {
                best = best.min(table.candidate_pos(cid, state.learned[cid]));
            }
            table.decide(v, best)
        };
        effect.decisions.push((v, choice));
    }

    // Phase 3: announce changes. Both branches leave the node with
    // chosen == announced == new, so the mismatch counter can only drop.
    for k in 0..effect.decisions.len() {
        let (v, new) = effect.decisions[k];
        let vi = v.index();
        let was_mismatched = state.chosen[vi] != state.announced[vi];
        if new != state.announced[vi] {
            for &out in index.out_channels(v) {
                state.queues[out].push_back(new);
                state.in_flight += 1;
                effect.sent += 1;
                effect.sent_on.push(out);
            }
            state.announced[vi] = new;
        }
        if new != state.chosen[vi] {
            let old = state.chosen[vi];
            effect.changed.push((v, old, new));
            state.chosen[vi] = new;
        }
        if was_mismatched {
            state.mismatched -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_core::step::{ChannelAction, NodeUpdate};
    use routelab_spp::{gadgets, Channel};

    struct Fixture {
        inst: routelab_spp::SppInstance,
        table: RouteTable,
        index: ChannelIndex,
        state: InternedState,
    }

    fn disagree() -> Fixture {
        let inst = gadgets::disagree();
        let table = RouteTable::new(&inst);
        let index = ChannelIndex::new(inst.graph());
        let state = InternedState::initial(&table, &index);
        Fixture { inst, table, index, state }
    }

    fn activate_all(f: &mut Fixture, name: &str) -> InternedEffect {
        let v = f.inst.node_by_name(name).unwrap();
        let actions = f
            .index
            .in_channels(v)
            .iter()
            .map(|&cid| ChannelAction::read_all(f.index.channel(cid)))
            .collect();
        let step = ActivationStep::single(NodeUpdate::new(v, actions));
        let mut effect = InternedEffect::default();
        execute_step_interned(&f.table, &f.index, &mut f.state, &step, &mut effect);
        effect
    }

    #[test]
    fn initial_state_is_not_quiescent_until_bootstrap() {
        let mut f = disagree();
        assert!(!f.state.is_quiescent());
        assert_eq!(f.state.messages_in_flight(), 0);
        let e = activate_all(&mut f, "d");
        assert_eq!(e.sent, 2);
        assert!(e.changed.is_empty());
        assert_eq!(f.state.messages_in_flight(), 2);
        assert_eq!(f.state.max_queue_len(), 1);
    }

    #[test]
    fn quiescence_counters_reach_zero_on_convergence() {
        let mut f = disagree();
        activate_all(&mut f, "d");
        for _ in 0..8 {
            activate_all(&mut f, "x");
            activate_all(&mut f, "y");
            activate_all(&mut f, "d");
        }
        assert!(f.state.is_quiescent());
        assert_eq!(f.state.messages_in_flight(), 0);
        // Counters agree with a direct recount.
        let direct: usize = (0..f.state.channel_count()).map(|c| f.state.queue(c).len()).sum();
        assert_eq!(direct, 0);
    }

    #[test]
    fn learned_and_chosen_decode_to_exec_results() {
        let mut f = disagree();
        activate_all(&mut f, "d");
        let e = activate_all(&mut f, "x");
        let x = f.inst.node_by_name("x").unwrap();
        assert_eq!(f.inst.fmt_route(f.table.route(f.state.chosen(x))), "xd");
        assert_eq!(e.changed.len(), 1);
        assert_eq!(e.consumed, 1);
        assert_eq!(e.sent, 2);
    }

    #[test]
    fn drop_semantics_mirror_fifo_process() {
        let mut f = disagree();
        activate_all(&mut f, "d");
        let x = f.inst.node_by_name("x").unwrap();
        let c = Channel::new(f.inst.dest(), x);
        let step = ActivationStep::single(NodeUpdate::new(x, vec![ChannelAction::drop_one(c)]));
        let mut e = InternedEffect::default();
        execute_step_interned(&f.table, &f.index, &mut f.state, &step, &mut e);
        assert_eq!(e.consumed, 1);
        assert_eq!(e.dropped, 1);
        assert!(e.kept_on.is_empty());
        assert_eq!(e.dropped_on.len(), 1);
        assert!(f.state.chosen(x).is_epsilon());
        let cid = f.index.id(c).unwrap();
        assert!(f.state.queue(cid).is_empty());
    }

    #[test]
    fn fingerprint_distinguishes_states() {
        let f = disagree();
        let a = f.state.clone();
        let mut g = disagree();
        assert_eq!(a.fingerprint(), g.state.fingerprint());
        activate_all(&mut g, "d");
        assert_ne!(a.fingerprint(), g.state.fingerprint());
    }
}

//! Path-assignment traces and the realization relations of Definition 3.2.

use routelab_spp::{Route, SppInstance};

/// A sequence of global path assignments `π(0), π(1), …`, one per executed
/// step plus the initial assignment at index 0. Each assignment is indexed
/// by node id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathTrace {
    assignments: Vec<Vec<Route>>,
}

impl PathTrace {
    /// An empty trace.
    pub fn new() -> Self {
        PathTrace::default()
    }

    /// Appends an assignment.
    pub fn push(&mut self, pi: Vec<Route>) {
        self.assignments.push(pi);
    }

    /// Number of recorded assignments.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The `t`-th assignment.
    pub fn get(&self, t: usize) -> Option<&Vec<Route>> {
        self.assignments.get(t)
    }

    /// The final assignment, if any.
    pub fn last(&self) -> Option<&Vec<Route>> {
        self.assignments.last()
    }

    /// Iterates over assignments in time order.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<Route>> {
        self.assignments.iter()
    }

    /// Collapses consecutive duplicate assignments (the "stutter-free"
    /// skeleton used when checking realization with repetition).
    pub fn dedup(&self) -> PathTrace {
        let mut out = PathTrace::new();
        for pi in &self.assignments {
            if out.last() != Some(pi) {
                out.push(pi.clone());
            }
        }
        out
    }

    /// Renders a trace with instance names, one line per step.
    pub fn render(&self, inst: &SppInstance) -> String {
        let mut out = String::new();
        for (t, pi) in self.assignments.iter().enumerate() {
            let cells: Vec<String> = pi.iter().map(|r| inst.fmt_route(r)).collect();
            out.push_str(&format!("t={t}: ({})\n", cells.join(", ")));
        }
        out
    }
}

impl FromIterator<Vec<Route>> for PathTrace {
    fn from_iter<I: IntoIterator<Item = Vec<Route>>>(iter: I) -> Self {
        PathTrace { assignments: iter.into_iter().collect() }
    }
}

/// The relation between a base trace and a candidate realization
/// (Definition 3.2), strongest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceRelation {
    /// No relation holds.
    None,
    /// The base is a subsequence of the candidate.
    Subsequence,
    /// The candidate is the base with assignments repeated.
    Repetition,
    /// The traces are identical.
    Exact,
}

/// `π'` exactly realizes `π`: the sequences are identical.
pub fn is_exact(base: &PathTrace, candidate: &PathTrace) -> bool {
    base == candidate
}

/// `π'` realizes `π` with repetition: `π'` is obtained from `π` by replacing
/// each assignment with one or more consecutive copies.
pub fn is_repetition(base: &PathTrace, candidate: &PathTrace) -> bool {
    if base.is_empty() {
        return candidate.is_empty();
    }
    // Dynamic program over "which base block are we inside": needed because
    // adjacent equal base entries make the block boundaries ambiguous.
    let n = base.len();
    let mut in_block = vec![false; n];
    let mut before_first = true;
    for pi in candidate.iter() {
        let mut next = vec![false; n];
        let mut any = false;
        for t in 0..n {
            let can_continue = in_block[t];
            let can_start = if t == 0 { before_first } else { in_block[t - 1] };
            if (can_continue || can_start) && pi == base.get(t).expect("t < n") {
                next[t] = true;
                any = true;
            }
        }
        before_first = false;
        in_block = next;
        if !any {
            return false;
        }
    }
    !before_first && in_block[n - 1]
}

/// `π'` realizes `π` as a subsequence: `π` is a subsequence of `π'`.
pub fn is_subsequence(base: &PathTrace, candidate: &PathTrace) -> bool {
    let mut t = 0;
    for pi in candidate.iter() {
        if t < base.len() && pi == base.get(t).expect("t < len") {
            t += 1;
        }
    }
    t == base.len()
}

/// The strongest relation of Definition 3.2 that holds between `base` and
/// `candidate`.
pub fn strongest_relation(base: &PathTrace, candidate: &PathTrace) -> TraceRelation {
    if is_exact(base, candidate) {
        TraceRelation::Exact
    } else if is_repetition(base, candidate) {
        TraceRelation::Repetition
    } else if is_subsequence(base, candidate) {
        TraceRelation::Subsequence
    } else {
        TraceRelation::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_spp::Path;

    fn pi(tag: u32) -> Vec<Route> {
        // Distinct single-node assignments keyed by tag.
        vec![Route::from(Path::from_ids([tag]).unwrap())]
    }

    fn trace(tags: &[u32]) -> PathTrace {
        tags.iter().map(|&t| pi(t)).collect()
    }

    #[test]
    fn exact_relation() {
        assert!(is_exact(&trace(&[1, 2, 3]), &trace(&[1, 2, 3])));
        assert!(!is_exact(&trace(&[1, 2]), &trace(&[1, 2, 3])));
    }

    #[test]
    fn repetition_relation() {
        let base = trace(&[1, 2, 3]);
        assert!(is_repetition(&base, &trace(&[1, 2, 3])));
        assert!(is_repetition(&base, &trace(&[1, 1, 2, 3, 3, 3])));
        // Missing an element of the base.
        assert!(!is_repetition(&base, &trace(&[1, 3])));
        // Extra foreign state.
        assert!(!is_repetition(&base, &trace(&[1, 2, 9, 3])));
        // Order matters.
        assert!(!is_repetition(&base, &trace(&[2, 1, 3])));
        // Truncated candidate.
        assert!(!is_repetition(&base, &trace(&[1, 2])));
        // Repetition must handle equal adjacent base entries.
        let stutter = trace(&[1, 1, 2]);
        assert!(is_repetition(&stutter, &trace(&[1, 1, 2])));
        assert!(is_repetition(&stutter, &trace(&[1, 1, 1, 2])));
    }

    #[test]
    fn subsequence_relation() {
        let base = trace(&[1, 3]);
        assert!(is_subsequence(&base, &trace(&[1, 2, 3])));
        assert!(is_subsequence(&base, &trace(&[1, 3])));
        assert!(!is_subsequence(&base, &trace(&[3, 1])));
        assert!(!is_subsequence(&base, &trace(&[1, 2])));
        assert!(is_subsequence(&trace(&[]), &trace(&[1])));
    }

    #[test]
    fn strongest_relation_ranks() {
        let base = trace(&[1, 2]);
        assert_eq!(strongest_relation(&base, &trace(&[1, 2])), TraceRelation::Exact);
        assert_eq!(strongest_relation(&base, &trace(&[1, 1, 2])), TraceRelation::Repetition);
        assert_eq!(strongest_relation(&base, &trace(&[1, 9, 2])), TraceRelation::Subsequence);
        assert_eq!(strongest_relation(&base, &trace(&[2, 1])), TraceRelation::None);
        assert!(TraceRelation::Exact > TraceRelation::Repetition);
        assert!(TraceRelation::Repetition > TraceRelation::Subsequence);
        assert!(TraceRelation::Subsequence > TraceRelation::None);
    }

    #[test]
    fn dedup_collapses_stutter() {
        let t = trace(&[1, 1, 2, 2, 2, 1]);
        assert_eq!(t.dedup(), trace(&[1, 2, 1]));
        assert!(PathTrace::new().dedup().is_empty());
    }

    #[test]
    fn accessors() {
        let t = trace(&[1, 2]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.get(1), Some(&pi(2)));
        assert_eq!(t.get(2), None);
        assert_eq!(t.last(), Some(&pi(2)));
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn render_includes_epsilon() {
        let inst = routelab_spp::gadgets::line2();
        let mut t = PathTrace::new();
        t.push(vec![Route::empty(), Route::empty()]);
        let s = t.render(&inst);
        assert!(s.contains('ε'), "{s}");
    }
}

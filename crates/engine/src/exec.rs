//! One activation step, exactly as in Definition 2.3.
//!
//! For each updating node (phase 1) the prescribed channels are processed —
//! `i = min(f(c), m_c)` messages deleted, ρ set to the last non-dropped one;
//! (phase 2) the node re-chooses the most preferred feasible extension of
//! its known routes; (phase 3) if the choice differs from the node's last
//! announcement, the new route (possibly ε, a withdrawal) is written to
//! every outgoing channel. With several simultaneous updaters (Example
//! A.6) all reads complete before any node chooses, and all choices
//! complete before any announcement is written.
//!
//! Export policy: the instances in the paper filter routes solely through
//! permitted-path sets, so announcements go to every neighbor
//! ("if prescribed by export policy" with the always-export policy).

use routelab_core::step::{ActivationStep, NodeUpdate};
use routelab_spp::{NodeId, Route, SppInstance};

use crate::index::ChannelIndex;
use crate::state::NetworkState;

/// What one step did, for statistics and fairness bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StepEffect {
    /// Nodes whose π changed: `(node, old, new)`.
    pub changed: Vec<(NodeId, Route, Route)>,
    /// Messages deleted from channels.
    pub consumed: usize,
    /// Messages dropped (subset of `consumed`).
    pub dropped: usize,
    /// Messages written to channels.
    pub sent: usize,
    /// Dense channel ids written to in phase 3 (one entry per message, so a
    /// queue-depth high-water mark can be tracked incrementally: queues only
    /// grow at these points).
    pub sent_on: Vec<usize>,
    /// Dense channel ids this step *attended* (targeted with `f ≥ 1`).
    pub attended: Vec<usize>,
    /// Dense channel ids on which a message was processed and kept.
    pub kept_on: Vec<usize>,
    /// Dense channel ids on which at least one message was dropped.
    pub dropped_on: Vec<usize>,
}

/// Executes one activation step, mutating `state`.
///
/// # Panics
///
/// Panics if an action references a channel absent from `index` — steps are
/// expected to be validated (e.g. with [`routelab_core::validate`]) first.
pub fn execute_step(
    inst: &SppInstance,
    index: &ChannelIndex,
    state: &mut NetworkState,
    step: &ActivationStep,
) -> StepEffect {
    let mut effect = StepEffect::default();

    // Phase 1: collect updates of path information (all nodes in U).
    for update in &step.updates {
        for action in &update.actions {
            let cid = index
                .id(action.channel())
                .expect("activation step references a channel of the graph");
            if action.attends() {
                effect.attended.push(cid);
            }
            let outcome =
                state.queue_mut(cid).process(action.take(), action.drops().iter().copied());
            effect.consumed += outcome.consumed;
            effect.dropped += outcome.dropped;
            if outcome.dropped > 0 {
                effect.dropped_on.push(cid);
            }
            if let Some(route) = outcome.learned {
                *state.learned_mut(cid) = route;
                effect.kept_on.push(cid);
            }
        }
    }

    // Phase 2: choose the most preferred path from the known routes.
    let mut decisions: Vec<(NodeId, Route)> = Vec::with_capacity(step.updates.len());
    for update in &step.updates {
        decisions.push((update.node, choose(inst, index, state, update)));
    }

    // Phase 3: announce changes.
    for (v, new_route) in decisions {
        if &new_route != state.announced(v) {
            for &out in index.out_channels(v) {
                state.queue_mut(out).push(new_route.clone());
                effect.sent += 1;
                effect.sent_on.push(out);
            }
            *state.announced_mut(v) = new_route.clone();
        }
        if &new_route != state.chosen(v) {
            let old = state.chosen(v).clone();
            effect.changed.push((v, old, new_route.clone()));
            *state.chosen_mut(v) = new_route;
        }
    }
    effect
}

/// Definition 2.3 step 3 for one node: the best feasible extension of the
/// routes known on its incoming channels ((d) for the destination).
fn choose(
    inst: &SppInstance,
    index: &ChannelIndex,
    state: &NetworkState,
    update: &NodeUpdate,
) -> Route {
    let routes: Vec<Route> =
        index.in_channels(update.node).iter().map(|&cid| state.learned(cid).clone()).collect();
    inst.choose_best(update.node, routes.iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_core::step::ChannelAction;
    use routelab_spp::{gadgets, Channel, Path};

    struct Fixture {
        inst: routelab_spp::SppInstance,
        index: ChannelIndex,
        state: NetworkState,
    }

    fn disagree() -> Fixture {
        let inst = gadgets::disagree();
        let index = ChannelIndex::new(inst.graph());
        let state = NetworkState::initial(&inst, &index);
        Fixture { inst, index, state }
    }

    fn activate_all(f: &mut Fixture, name: &str) -> StepEffect {
        let v = f.inst.node_by_name(name).unwrap();
        let actions = f
            .index
            .in_channels(v)
            .iter()
            .map(|&cid| ChannelAction::read_all(f.index.channel(cid)))
            .collect();
        let step = ActivationStep::single(NodeUpdate::new(v, actions));
        execute_step(&f.inst, &f.index, &mut f.state, &step)
    }

    #[test]
    fn destination_bootstrap_announces_once() {
        let mut f = disagree();
        let e1 = activate_all(&mut f, "d");
        // d announces (d) to both neighbors; its π was already (d).
        assert_eq!(e1.sent, 2);
        assert!(e1.changed.is_empty());
        assert_eq!(f.state.messages_in_flight(), 2);
        // Second activation: no change, no announcement.
        let e2 = activate_all(&mut f, "d");
        assert_eq!(e2.sent, 0);
        assert_eq!(f.state.messages_in_flight(), 2);
    }

    #[test]
    fn node_learns_and_extends() {
        let mut f = disagree();
        activate_all(&mut f, "d");
        let e = activate_all(&mut f, "x");
        let x = f.inst.node_by_name("x").unwrap();
        assert_eq!(f.inst.fmt_route(f.state.chosen(x)), "xd");
        assert_eq!(e.changed.len(), 1);
        assert_eq!(e.consumed, 1); // the (d) announcement from d
        assert_eq!(e.sent, 2); // x announces xd to d and y
    }

    #[test]
    fn preference_switch_and_withdrawal_semantics() {
        let mut f = disagree();
        activate_all(&mut f, "d");
        activate_all(&mut f, "x"); // x -> xd, announces
        activate_all(&mut f, "y"); // y learns d and xd, prefers yxd
        let y = f.inst.node_by_name("y").unwrap();
        assert_eq!(f.inst.fmt_route(f.state.chosen(y)), "yxd");
        // x now reads y's announcement of yxd: the extension xyxd loops, so
        // x's candidates stay {xd}; no change, no announcement.
        let e = activate_all(&mut f, "x");
        assert!(e.changed.is_empty());
        assert_eq!(e.sent, 0);
    }

    #[test]
    fn rho_persists_between_activations() {
        let mut f = disagree();
        activate_all(&mut f, "d");
        activate_all(&mut f, "x");
        // Activate x again with all channels empty: ρ still holds (d) from
        // d, so the choice stays xd.
        let e = activate_all(&mut f, "x");
        assert!(e.changed.is_empty());
        assert_eq!(e.consumed, 0);
        let x = f.inst.node_by_name("x").unwrap();
        assert_eq!(f.inst.fmt_route(f.state.chosen(x)), "xd");
    }

    #[test]
    fn bare_update_rechooses_without_reading() {
        let mut f = disagree();
        activate_all(&mut f, "d");
        let x = f.inst.node_by_name("x").unwrap();
        // A bare update reads nothing; ρ is all-ε, so x keeps ε.
        let step = ActivationStep::single(NodeUpdate::bare(x));
        let e = execute_step(&f.inst, &f.index, &mut f.state, &step);
        assert!(e.changed.is_empty());
        assert_eq!(e.consumed, 0);
        assert_eq!(f.state.messages_in_flight(), 2);
    }

    #[test]
    fn simultaneous_updates_read_before_announcing() {
        // Example A.6 semantics: when x and y activate together after d, both
        // read (d) and both choose their direct routes in the same step.
        let mut f = disagree();
        activate_all(&mut f, "d");
        let x = f.inst.node_by_name("x").unwrap();
        let y = f.inst.node_by_name("y").unwrap();
        let d = f.inst.dest();
        let step = ActivationStep::simultaneous(vec![
            NodeUpdate::new(x, vec![ChannelAction::read_all(Channel::new(d, x))]),
            NodeUpdate::new(y, vec![ChannelAction::read_all(Channel::new(d, y))]),
        ]);
        let e = execute_step(&f.inst, &f.index, &mut f.state, &step);
        assert_eq!(e.changed.len(), 2);
        assert_eq!(f.inst.fmt_route(f.state.chosen(x)), "xd");
        assert_eq!(f.inst.fmt_route(f.state.chosen(y)), "yd");
        // Each announced to both neighbors.
        assert_eq!(e.sent, 4);
    }

    #[test]
    fn unreliable_drop_leaves_rho_unchanged() {
        let mut f = disagree();
        activate_all(&mut f, "d");
        let x = f.inst.node_by_name("x").unwrap();
        let d = f.inst.dest();
        let c = Channel::new(d, x);
        let step = ActivationStep::single(NodeUpdate::new(x, vec![ChannelAction::drop_one(c)]));
        let e = execute_step(&f.inst, &f.index, &mut f.state, &step);
        assert_eq!(e.consumed, 1);
        assert_eq!(e.dropped, 1);
        assert!(e.kept_on.is_empty());
        assert_eq!(e.dropped_on.len(), 1);
        assert!(f.state.chosen(x).is_epsilon());
        // The message is gone.
        let cid = f.index.id(c).unwrap();
        assert!(f.state.queue(cid).is_empty());
    }

    #[test]
    fn destination_always_chooses_trivial() {
        let mut f = disagree();
        activate_all(&mut f, "d");
        activate_all(&mut f, "x");
        // d reads x's announcement; its choice must stay (d).
        activate_all(&mut f, "d");
        assert_eq!(f.state.chosen(f.inst.dest()), &Route::path(Path::trivial(f.inst.dest())));
    }

    #[test]
    fn effect_tracks_attended_channels() {
        let mut f = disagree();
        let x = f.inst.node_by_name("x").unwrap();
        let d = f.inst.dest();
        let y = f.inst.node_by_name("y").unwrap();
        let step = ActivationStep::single(NodeUpdate::new(
            x,
            vec![
                ChannelAction::read_all(Channel::new(d, x)),
                ChannelAction::skip(Channel::new(y, x)),
            ],
        ));
        let e = execute_step(&f.inst, &f.index, &mut f.state, &step);
        assert_eq!(e.attended.len(), 1);
        assert_eq!(f.index.channel(e.attended[0]), Channel::new(d, x));
    }
}

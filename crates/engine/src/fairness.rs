//! Finite-prefix fairness checking (Definition 2.4).
//!
//! A fair activation sequence lets every node try to read each of its
//! channels infinitely often, and follows every dropped message with a later
//! non-dropped one. On finite prefixes we check the natural analogues: a
//! bounded attendance gap per channel, and "no channel's last processed
//! message was a drop".

use std::error::Error;
use std::fmt;

use routelab_core::step::ActivationSeq;
use routelab_spp::Channel;

use crate::exec::StepEffect;
use crate::index::ChannelIndex;

/// A fairness violation on a finite prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unfairness {
    /// A channel went unattended for longer than the window.
    Starved { channel: Channel, gap: usize },
    /// A channel's final processed message was dropped with nothing
    /// processed afterwards.
    DanglingDrop { channel: Channel },
}

impl fmt::Display for Unfairness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unfairness::Starved { channel, gap } => {
                write!(f, "channel {channel} unattended for {gap} steps")
            }
            Unfairness::DanglingDrop { channel } => {
                write!(f, "channel {channel} ends with a dropped message")
            }
        }
    }
}

impl Error for Unfairness {}

/// The largest attendance gap per channel over a finite sequence (including
/// the leading gap before the first attendance and the trailing gap after
/// the last one).
pub fn attendance_gaps(seq: &ActivationSeq, index: &ChannelIndex) -> Vec<usize> {
    let mut last = vec![0usize; index.len()];
    let mut max_gap = vec![0usize; index.len()];
    for (t, step) in seq.iter().enumerate() {
        for a in step.actions() {
            if !a.attends() {
                continue;
            }
            if let Some(cid) = index.id(a.channel()) {
                max_gap[cid] = max_gap[cid].max(t + 1 - last[cid]);
                last[cid] = t + 1;
            }
        }
    }
    for cid in 0..index.len() {
        max_gap[cid] = max_gap[cid].max(seq.len() + 1 - last[cid]);
    }
    max_gap
}

/// Checks that every channel is attended at least once in every window of
/// `window` consecutive steps.
///
/// # Errors
///
/// Returns the first starved channel.
pub fn check_window(
    seq: &ActivationSeq,
    index: &ChannelIndex,
    window: usize,
) -> Result<(), Unfairness> {
    for (cid, &gap) in attendance_gaps(seq, index).iter().enumerate() {
        if gap > window {
            return Err(Unfairness::Starved { channel: index.channel(cid), gap });
        }
    }
    Ok(())
}

/// Checks the drop-fairness analogue on executed effects: no channel's last
/// processed message may be a drop (every drop must be followed by a later
/// kept message on the same channel).
///
/// # Errors
///
/// Returns the first channel ending on a drop.
pub fn check_drops_resolved(
    effects: &[StepEffect],
    index: &ChannelIndex,
) -> Result<(), Unfairness> {
    let mut pending_drop = vec![false; index.len()];
    for e in effects {
        for &cid in &e.dropped_on {
            pending_drop[cid] = true;
        }
        for &cid in &e.kept_on {
            pending_drop[cid] = false;
        }
    }
    if let Some(cid) = pending_drop.iter().position(|&p| p) {
        return Err(Unfairness::DanglingDrop { channel: index.channel(cid) });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_core::step::{ActivationStep, ChannelAction, NodeUpdate};
    use routelab_spp::gadgets;

    fn read_step(index: &ChannelIndex, cid: usize) -> ActivationStep {
        let c = index.channel(cid);
        ActivationStep::single(NodeUpdate::new(c.to, vec![ChannelAction::read_one(c)]))
    }

    #[test]
    fn gaps_measured_correctly() {
        let inst = gadgets::line2();
        let index = ChannelIndex::new(inst.graph());
        // Two channels: (d,v) and (v,d) in some order.
        let seq = vec![read_step(&index, 0), read_step(&index, 0), read_step(&index, 1)];
        let gaps = attendance_gaps(&seq, &index);
        // Channel 0 attended at steps 1 and 2, trailing gap 2 (len 3 + 1 - 2).
        assert_eq!(gaps[0], 2);
        // Channel 1 attended at step 3 only: leading gap 3, trailing 1.
        assert_eq!(gaps[1], 3);
    }

    #[test]
    fn window_check() {
        let inst = gadgets::line2();
        let index = ChannelIndex::new(inst.graph());
        let seq = vec![read_step(&index, 0), read_step(&index, 1)];
        assert!(check_window(&seq, &index, 2).is_ok());
        assert!(matches!(check_window(&seq, &index, 1), Err(Unfairness::Starved { .. })));
        // Skip actions do not count as attendance.
        let skip = ActivationStep::single(NodeUpdate::new(
            index.channel(0).to,
            vec![ChannelAction::skip(index.channel(0))],
        ));
        let gaps = attendance_gaps(&vec![skip], &index);
        assert_eq!(gaps[0], 2); // never attended in a 1-step sequence
    }

    #[test]
    fn unattended_channel_detected() {
        let inst = gadgets::disagree();
        let index = ChannelIndex::new(inst.graph());
        let seq = vec![read_step(&index, 0)];
        let err = check_window(&seq, &index, 1).unwrap_err();
        assert!(matches!(err, Unfairness::Starved { .. }));
        assert!(err.to_string().contains("unattended"));
    }

    #[test]
    fn drop_resolution() {
        let inst = gadgets::line2();
        let index = ChannelIndex::new(inst.graph());
        let drop_effect = StepEffect { dropped_on: vec![0], ..Default::default() };
        let keep_effect = StepEffect { kept_on: vec![0], ..Default::default() };
        // Drop then keep: fine.
        assert!(check_drops_resolved(&[drop_effect.clone(), keep_effect.clone()], &index).is_ok());
        // Keep then drop: dangling.
        let err = check_drops_resolved(&[keep_effect, drop_effect], &index).unwrap_err();
        assert!(matches!(err, Unfairness::DanglingDrop { .. }));
        // No drops at all: fine.
        assert!(check_drops_resolved(&[], &index).is_ok());
    }
}

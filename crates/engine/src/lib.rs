//! Execution engine for the distributed autonomous routing algorithm.
//!
//! Implements Definition 2.3 of the paper over any [`routelab_spp::SppInstance`]:
//! FIFO channels carrying route announcements, per-channel known routes ρ,
//! path assignments π, and step execution driven by activation steps from
//! [`routelab_core`].
//!
//! * [`channel`] — FIFO channels with the `(f, g)` processing rule,
//! * [`index`] — dense channel indexing for a graph,
//! * [`state`] — the complete network state (π, ρ, last announcements,
//!   channel contents), hashable for cycle detection,
//! * [`exec`] — one activation step, exactly as in Definition 2.3,
//! * [`interned`] — the allocation-free hot path: the same step semantics
//!   over dense [`routelab_spp::RouteId`]s and precomputed extension tables,
//! * [`runner`] — stateful driver over the interned engine, recording
//!   path-assignment traces and decoding routes at the output boundary,
//! * [`trace`] — traces and the relations of Definition 3.2 (exact /
//!   repetition / subsequence),
//! * [`schedule`] — scripted, round-robin and random fair schedulers,
//! * [`fairness`] — finite-window fairness checking (Definition 2.4),
//! * [`outcome`] — convergence / oscillation detection for concrete runs,
//! * [`paper_runs`] — the scripted executions printed in Examples A.1–A.6.
//!
//! # Example
//!
//! ```
//! use routelab_engine::{runner::Runner, schedule::RoundRobin};
//! use routelab_engine::outcome::{drive, RunOutcome};
//! use routelab_spp::gadgets;
//!
//! let inst = gadgets::good_gadget();
//! let mut runner = Runner::new(&inst);
//! let mut sched = RoundRobin::new(&inst, "REA".parse().unwrap());
//! match drive(&mut runner, &mut sched, 1_000) {
//!     RunOutcome::Converged { steps, .. } => assert!(steps < 100),
//!     other => panic!("GOOD-GADGET must converge, got {other:?}"),
//! }
//! ```

pub mod channel;
pub mod exec;
pub mod fairness;
pub mod index;
pub mod interned;
pub mod outcome;
pub mod paper_runs;
pub mod runner;
pub mod schedule;
pub mod state;
pub mod trace;

pub use exec::StepEffect;
pub use index::ChannelIndex;
pub use interned::{InternedEffect, InternedState};
pub use runner::{QueueView, Runner, StateView};
pub use schedule::SchedState;
pub use state::NetworkState;
pub use trace::{PathTrace, TraceRelation};

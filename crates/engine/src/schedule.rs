//! Schedulers: sources of activation steps.
//!
//! * [`Scripted`] — replay a fixed finite sequence (the paper's examples),
//! * [`Cyclic`] — repeat a finite sequence forever (oscillation witnesses),
//! * [`RoundRobin`] — the canonical fair schedule for a model,
//! * [`Periodic`] — per-node activation periods (announcement wait times),
//! * [`RandomFair`] — randomized schedules with an attendance window that
//!   keeps finite prefixes fair (Definition 2.4).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use routelab_core::dims::{MessagePolicy, NeighborScope, Reliability};
use routelab_core::model::CommModel;
use routelab_core::step::{ActivationStep, ChannelAction, NodeUpdate};
use routelab_spp::{NodeId, SppInstance};

use crate::index::ChannelIndex;
use crate::state::NetworkState;

/// The slice of network state schedulers may consult: node count (to pick
/// updaters) and queue lengths (to size drop sets). Implemented by both
/// [`NetworkState`] and the interned runner's state view, so schedulers
/// work with either engine without cloning any route data.
pub trait SchedState {
    /// Number of nodes.
    fn node_count(&self) -> usize;
    /// Queued messages on the channel with dense id `c`.
    fn queue_len(&self, c: usize) -> usize;
}

impl SchedState for NetworkState {
    fn node_count(&self) -> usize {
        self.node_count()
    }

    fn queue_len(&self, c: usize) -> usize {
        self.queue(c).len()
    }
}

/// A source of activation steps. `None` means the schedule is exhausted
/// (only finite schedules do this).
pub trait Scheduler {
    /// The next step to execute given the current state.
    fn next_step(&mut self, state: &dyn SchedState) -> Option<ActivationStep>;

    /// A fingerprint of the scheduler's internal position. Combined with the
    /// state fingerprint this makes cycle detection sound: a repeated
    /// `(state, scheduler)` pair proves the run is periodic from there on.
    /// Schedulers whose future output is not a function of this fingerprint
    /// (e.g. randomized ones) must return a never-repeating value.
    fn fingerprint(&self) -> u64;

    /// `false` when [`Scheduler::fingerprint`] never repeats (randomized
    /// schedulers): cycle detection can then skip state fingerprinting and
    /// the seen-set entirely, since no `(state, scheduler)` pair can recur.
    fn may_repeat(&self) -> bool {
        true
    }
}

/// Replays a fixed finite sequence, then stops.
#[derive(Debug, Clone)]
pub struct Scripted {
    steps: Vec<ActivationStep>,
    pos: usize,
}

impl Scripted {
    /// A scheduler replaying `steps` once.
    pub fn new(steps: Vec<ActivationStep>) -> Self {
        Scripted { steps, pos: 0 }
    }
}

impl Scheduler for Scripted {
    fn next_step(&mut self, _state: &dyn SchedState) -> Option<ActivationStep> {
        let s = self.steps.get(self.pos).cloned();
        if s.is_some() {
            self.pos += 1;
        }
        s
    }

    fn fingerprint(&self) -> u64 {
        self.pos as u64
    }
}

/// Repeats a finite sequence forever.
#[derive(Debug, Clone)]
pub struct Cyclic {
    steps: Vec<ActivationStep>,
    pos: usize,
}

impl Cyclic {
    /// A scheduler cycling through `steps`.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty.
    pub fn new(steps: Vec<ActivationStep>) -> Self {
        assert!(!steps.is_empty(), "a cyclic schedule needs at least one step");
        Cyclic { steps, pos: 0 }
    }
}

impl Scheduler for Cyclic {
    fn next_step(&mut self, _state: &dyn SchedState) -> Option<ActivationStep> {
        let s = self.steps[self.pos].clone();
        self.pos = (self.pos + 1) % self.steps.len();
        Some(s)
    }

    fn fingerprint(&self) -> u64 {
        self.pos as u64
    }
}

/// Builds the canonical action for one channel under a message policy
/// (always lossless, hence legal for both reliabilities).
fn canonical_action(policy: MessagePolicy, c: routelab_spp::Channel) -> ChannelAction {
    match policy {
        MessagePolicy::One => ChannelAction::read_one(c),
        // S, F and A all admit "read everything".
        MessagePolicy::Some | MessagePolicy::Forced | MessagePolicy::All => {
            ChannelAction::read_all(c)
        }
    }
}

/// The canonical fair schedule for a model: nodes in round-robin order; a
/// node with scope `1` cycles through its channels one per visit, scopes
/// `M`/`E` process all channels.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    model: CommModel,
    index: ChannelIndex,
    node_count: usize,
    node_cursor: usize,
    /// Per-node channel cursor (used when scope is `1`).
    channel_cursor: Vec<usize>,
}

impl RoundRobin {
    /// A round-robin scheduler for `inst` under `model`.
    pub fn new(inst: &SppInstance, model: CommModel) -> Self {
        RoundRobin {
            model,
            index: ChannelIndex::new(inst.graph()),
            node_count: inst.node_count(),
            node_cursor: 0,
            channel_cursor: vec![0; inst.node_count()],
        }
    }
}

impl Scheduler for RoundRobin {
    fn next_step(&mut self, _state: &dyn SchedState) -> Option<ActivationStep> {
        let v = NodeId(self.node_cursor as u32);
        self.node_cursor = (self.node_cursor + 1) % self.node_count;
        let ins = self.index.in_channels(v);
        let actions = if ins.is_empty() {
            Vec::new()
        } else {
            match self.model.scope {
                NeighborScope::One => {
                    let k = self.channel_cursor[v.index()] % ins.len();
                    self.channel_cursor[v.index()] = (k + 1) % ins.len();
                    vec![canonical_action(self.model.messages, self.index.channel(ins[k]))]
                }
                NeighborScope::Multiple | NeighborScope::Every => ins
                    .iter()
                    .map(|&c| canonical_action(self.model.messages, self.index.channel(c)))
                    .collect(),
            }
        };
        Some(ActivationStep::single(NodeUpdate::new(v, actions)))
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = self.node_cursor as u64;
        for &c in &self.channel_cursor {
            fp = fp.wrapping_mul(31).wrapping_add(c as u64);
        }
        fp
    }
}

/// Discrete-time periodic scheduler: node `i` activates every `periods[i]`
/// ticks (earliest-deadline order, ties by node id), processing channels
/// like [`RoundRobin`]. Models per-node announcement wait times — the knob
/// the paper's related-work section discusses for BGP: longer waits can
/// either slow convergence (routes are discovered late) or speed it up
/// (fewer spurious transient announcements).
#[derive(Debug, Clone)]
pub struct Periodic {
    model: CommModel,
    index: ChannelIndex,
    next_fire: Vec<u64>,
    periods: Vec<u64>,
    channel_cursor: Vec<usize>,
}

impl Periodic {
    /// A periodic scheduler with one activation period per node.
    ///
    /// # Panics
    ///
    /// Panics when `periods` does not have one non-zero entry per node.
    pub fn new(inst: &SppInstance, model: CommModel, periods: Vec<u64>) -> Self {
        assert_eq!(periods.len(), inst.node_count(), "one period per node");
        assert!(periods.iter().all(|&p| p > 0), "periods must be positive");
        Periodic {
            model,
            index: ChannelIndex::new(inst.graph()),
            next_fire: periods.clone(),
            periods,
            channel_cursor: vec![0; inst.node_count()],
        }
    }

    /// All nodes share the same period — equivalent to round-robin order.
    pub fn uniform(inst: &SppInstance, model: CommModel, period: u64) -> Self {
        Periodic::new(inst, model, vec![period; inst.node_count()])
    }
}

impl Scheduler for Periodic {
    fn next_step(&mut self, _state: &dyn SchedState) -> Option<ActivationStep> {
        let i = (0..self.next_fire.len())
            .min_by_key(|&i| (self.next_fire[i], i))
            .expect("at least one node");
        self.next_fire[i] += self.periods[i];
        let v = NodeId(i as u32);
        let ins = self.index.in_channels(v);
        let actions = if ins.is_empty() {
            Vec::new()
        } else {
            match self.model.scope {
                NeighborScope::One => {
                    let k = self.channel_cursor[i] % ins.len();
                    self.channel_cursor[i] = (k + 1) % ins.len();
                    vec![canonical_action(self.model.messages, self.index.channel(ins[k]))]
                }
                NeighborScope::Multiple | NeighborScope::Every => ins
                    .iter()
                    .map(|&c| canonical_action(self.model.messages, self.index.channel(c)))
                    .collect(),
            }
        };
        Some(ActivationStep::single(NodeUpdate::new(v, actions)))
    }

    fn fingerprint(&self) -> u64 {
        // Normalize fire times by their minimum: the schedule's future only
        // depends on the relative offsets, which recur — making cycle
        // detection possible despite absolute time growing forever.
        let base = self.next_fire.iter().copied().min().unwrap_or(0);
        let mut fp = 0u64;
        for &n in &self.next_fire {
            fp = fp.wrapping_mul(1_000_003).wrapping_add(n - base);
        }
        for &c in &self.channel_cursor {
            fp = fp.wrapping_mul(31).wrapping_add(c as u64);
        }
        fp
    }
}

/// Randomized fair scheduler: picks random nodes, random legal actions, and
/// forces attendance of any channel starved longer than `window` steps, so
/// every finite prefix of length `≥ window · |C|` attends every channel.
/// With unreliable models each read is dropped with probability `drop_prob`,
/// except that a channel never suffers two consecutive drops (a cheap
/// finite-prefix analogue of Definition 2.4's drop fairness).
#[derive(Debug)]
pub struct RandomFair {
    model: CommModel,
    index: ChannelIndex,
    rng: StdRng,
    drop_prob: f64,
    window: usize,
    step_no: usize,
    last_attended: Vec<usize>,
    /// Channels keyed by `(last_attended, Reverse(cid))`: the set's first
    /// element is the most starved channel, with ties broken toward the
    /// largest channel id — exactly the channel a linear
    /// `max_by_key(step_no - last_attended)` scan would return (that
    /// combinator keeps the *last* maximum). Makes the per-step starvation
    /// check O(log C) instead of O(C).
    starved: std::collections::BTreeSet<(usize, std::cmp::Reverse<usize>)>,
    just_dropped: Vec<bool>,
}

impl RandomFair {
    /// Creates a randomized fair scheduler.
    pub fn new(inst: &SppInstance, model: CommModel, seed: u64) -> Self {
        let index = ChannelIndex::new(inst.graph());
        let n = index.len();
        RandomFair {
            model,
            index,
            rng: StdRng::seed_from_u64(seed),
            drop_prob: 0.3,
            window: 8 * n.max(1),
            step_no: 0,
            last_attended: vec![0; n],
            starved: (0..n).map(|c| (0, std::cmp::Reverse(c))).collect(),
            just_dropped: vec![false; n],
        }
    }

    /// Sets the per-read drop probability (only effective for `U` models).
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Sets the attendance window.
    pub fn with_window(mut self, w: usize) -> Self {
        self.window = w.max(1);
        self
    }

    /// The channel to force-attend this step, if any has starved past the
    /// window. Most starved first; ties toward the largest channel id.
    fn forced_channel(&self) -> Option<usize> {
        self.starved
            .first()
            .copied()
            .filter(|&(last, _)| self.step_no - last >= self.window)
            .map(|(_, std::cmp::Reverse(c))| c)
    }

    fn action_for(&mut self, cid: usize, queue_len: usize, must_attend: bool) -> ChannelAction {
        let c = self.index.channel(cid);
        let take_all = |n: usize| n as u32;
        let action = match self.model.messages {
            MessagePolicy::One => ChannelAction::read_one(c),
            MessagePolicy::All => ChannelAction::read_all(c),
            MessagePolicy::Forced => {
                if self.rng.gen_bool(0.5) {
                    ChannelAction::read_all(c)
                } else {
                    ChannelAction::read_count(c, 1 + self.rng.gen_range(0..3u32))
                }
            }
            MessagePolicy::Some => match self.rng.gen_range(0..3) {
                0 => ChannelAction::read_all(c),
                1 => {
                    let lo = if must_attend { 1 } else { 0 };
                    ChannelAction::read_count(c, self.rng.gen_range(lo..4))
                }
                _ => ChannelAction::read_one(c),
            },
        };
        // Only a genuine read attempt counts as attendance (Definition 2.4).
        if action.attends() {
            self.starved.remove(&(self.last_attended[cid], std::cmp::Reverse(cid)));
            self.last_attended[cid] = self.step_no;
            self.starved.insert((self.step_no, std::cmp::Reverse(cid)));
        }
        // Unreliable models: maybe drop everything that is taken.
        if self.model.reliability == Reliability::Unreliable
            && !self.just_dropped[cid]
            && queue_len > 0
            && self.rng.gen_bool(self.drop_prob)
        {
            let k = match action.take() {
                routelab_core::step::Take::All => take_all(queue_len),
                routelab_core::step::Take::Count(k) => k.min(take_all(queue_len)),
            };
            if k > 0 {
                let drops = (1..=k).collect();
                if let Ok(a) = ChannelAction::new(c, action.take(), drops) {
                    self.just_dropped[cid] = true;
                    return a;
                }
            }
        }
        self.just_dropped[cid] = false;
        action
    }
}

impl Scheduler for RandomFair {
    fn next_step(&mut self, state: &dyn SchedState) -> Option<ActivationStep> {
        self.step_no += 1;
        // Starvation check: force the most starved channel if over window.
        let forced = self.forced_channel();
        let v = match forced {
            Some(c) => self.index.channel(c).to,
            None => NodeId(self.rng.gen_range(0..state.node_count()) as u32),
        };
        let ins: Vec<usize> = self.index.in_channels(v).to_vec();
        let actions = if ins.is_empty() {
            Vec::new()
        } else {
            let chosen: Vec<usize> = match self.model.scope {
                NeighborScope::Every => ins.clone(),
                NeighborScope::One => {
                    let c = forced.unwrap_or_else(|| ins[self.rng.gen_range(0..ins.len())]);
                    vec![c]
                }
                NeighborScope::Multiple => {
                    let mut subset: Vec<usize> =
                        ins.iter().copied().filter(|_| self.rng.gen_bool(0.5)).collect();
                    if let Some(c) = forced {
                        if !subset.contains(&c) {
                            subset.push(c);
                        }
                    }
                    subset
                }
            };
            chosen
                .into_iter()
                .map(|cid| {
                    let qlen = state.queue_len(cid);
                    self.action_for(cid, qlen, forced == Some(cid))
                })
                .collect()
        };
        Some(ActivationStep::single(NodeUpdate::new(v, actions)))
    }

    fn fingerprint(&self) -> u64 {
        // Randomized: never claim periodicity.
        self.step_no as u64
    }

    fn may_repeat(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_core::validate::check_step;
    use routelab_spp::gadgets;

    #[test]
    fn scripted_replays_then_stops() {
        let inst = gadgets::line2();
        let idx = ChannelIndex::new(inst.graph());
        let state = NetworkState::initial(&inst, &idx);
        let step = ActivationStep::single(NodeUpdate::bare(inst.dest()));
        let mut s = Scripted::new(vec![step.clone(), step.clone()]);
        assert!(s.next_step(&state).is_some());
        assert_eq!(s.fingerprint(), 1);
        assert!(s.next_step(&state).is_some());
        assert!(s.next_step(&state).is_none());
    }

    #[test]
    fn cyclic_wraps() {
        let inst = gadgets::line2();
        let idx = ChannelIndex::new(inst.graph());
        let state = NetworkState::initial(&inst, &idx);
        let step = ActivationStep::single(NodeUpdate::bare(inst.dest()));
        let mut s = Cyclic::new(vec![step.clone(), step]);
        for _ in 0..5 {
            assert!(s.next_step(&state).is_some());
        }
        assert_eq!(s.fingerprint(), 1); // 5 mod 2
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn cyclic_rejects_empty() {
        let _ = Cyclic::new(vec![]);
    }

    #[test]
    fn round_robin_emits_legal_steps_for_every_model() {
        for (name, inst) in gadgets::corpus() {
            let idx = ChannelIndex::new(inst.graph());
            let state = NetworkState::initial(&inst, &idx);
            for model in CommModel::all() {
                let mut rr = RoundRobin::new(&inst, model);
                for k in 0..3 * inst.node_count() {
                    let step = rr.next_step(&state).unwrap();
                    check_step(model, inst.graph(), &step)
                        .unwrap_or_else(|e| panic!("{name} {model} step {k}: {e}"));
                }
            }
        }
    }

    #[test]
    fn round_robin_scope_one_cycles_channels() {
        let inst = gadgets::disagree();
        let idx = ChannelIndex::new(inst.graph());
        let state = NetworkState::initial(&inst, &idx);
        let mut rr = RoundRobin::new(&inst, "R1O".parse().unwrap());
        // Collect the channels x reads over several rounds.
        let x = inst.node_by_name("x").unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..3 * inst.node_count() {
            let step = rr.next_step(&state).unwrap();
            if step.sole_node() == Some(x) {
                for a in step.actions() {
                    seen.insert(a.channel());
                }
            }
        }
        assert_eq!(seen.len(), 2, "x must cycle through both in-channels");
    }

    #[test]
    fn periodic_uniform_matches_round_robin_order() {
        let inst = gadgets::disagree();
        let idx = ChannelIndex::new(inst.graph());
        let state = NetworkState::initial(&inst, &idx);
        let mut p = Periodic::uniform(&inst, "REA".parse().unwrap(), 1);
        let mut rr = RoundRobin::new(&inst, "REA".parse().unwrap());
        for _ in 0..9 {
            assert_eq!(
                p.next_step(&state).unwrap().sole_node(),
                rr.next_step(&state).unwrap().sole_node()
            );
        }
    }

    #[test]
    fn periodic_respects_relative_rates() {
        let inst = gadgets::disagree();
        let idx = ChannelIndex::new(inst.graph());
        let state = NetworkState::initial(&inst, &idx);
        // d fires every tick, x every 2, y every 4.
        let mut p = Periodic::new(&inst, "RMS".parse().unwrap(), vec![1, 2, 4]);
        let mut counts = [0usize; 3];
        for _ in 0..28 {
            let v = p.next_step(&state).unwrap().sole_node().unwrap();
            counts[v.index()] += 1;
        }
        // Rates 1 : 1/2 : 1/4 over 28 steps -> 16 : 8 : 4.
        assert_eq!(counts, [16, 8, 4]);
    }

    #[test]
    fn periodic_steps_are_legal_and_fair() {
        let inst = gadgets::fig6();
        let idx = ChannelIndex::new(inst.graph());
        let state = NetworkState::initial(&inst, &idx);
        for model in ["R1O", "RMS", "REA"] {
            let model: CommModel = model.parse().unwrap();
            let periods: Vec<u64> = (0..inst.node_count() as u64).map(|i| 1 + i % 3).collect();
            let mut p = Periodic::new(&inst, model, periods);
            let mut seq = Vec::new();
            for _ in 0..200 {
                let s = p.next_step(&state).unwrap();
                check_step(model, inst.graph(), &s).unwrap();
                seq.push(s);
            }
            crate::fairness::check_window(&seq, &idx, 80).unwrap();
        }
    }

    #[test]
    fn periodic_fingerprint_recurs_for_cycle_detection() {
        let inst = gadgets::disagree();
        let idx = ChannelIndex::new(inst.graph());
        let state = NetworkState::initial(&inst, &idx);
        let mut p = Periodic::new(&inst, "REA".parse().unwrap(), vec![1, 2, 2]);
        let mut seen = std::collections::HashSet::new();
        let mut recurred = false;
        for _ in 0..50 {
            recurred |= !seen.insert(p.fingerprint());
            p.next_step(&state);
        }
        assert!(recurred, "normalized fingerprints must recur");
    }

    #[test]
    #[should_panic(expected = "one period per node")]
    fn periodic_validates_period_count() {
        let inst = gadgets::disagree();
        let _ = Periodic::new(&inst, "RMS".parse().unwrap(), vec![1]);
    }

    #[test]
    fn random_fair_emits_legal_steps_for_every_model() {
        let inst = gadgets::fig6();
        let idx = ChannelIndex::new(inst.graph());
        let state = NetworkState::initial(&inst, &idx);
        for model in CommModel::all() {
            let mut s = RandomFair::new(&inst, model, 7);
            for k in 0..100 {
                let step = s.next_step(&state).unwrap();
                check_step(model, inst.graph(), &step)
                    .unwrap_or_else(|e| panic!("{model} step {k}: {e}"));
            }
        }
    }

    #[test]
    fn random_fair_attends_every_channel_within_window() {
        let inst = gadgets::fig6();
        let idx = ChannelIndex::new(inst.graph());
        let state = NetworkState::initial(&inst, &idx);
        let window = 40;
        let mut s = RandomFair::new(&inst, "RMS".parse().unwrap(), 3).with_window(window);
        let mut last = vec![0usize; idx.len()];
        for t in 1..=2_000 {
            let step = s.next_step(&state).unwrap();
            for a in step.actions() {
                if a.attends() {
                    last[idx.id(a.channel()).unwrap()] = t;
                }
            }
            for (c, &l) in last.iter().enumerate() {
                // One channel is force-attended per step, so when many
                // starve at once the unluckiest can wait one extra slot per
                // channel (plus bookkeeping offsets).
                assert!(t - l <= window + 2 * idx.len(), "channel {c} starved for {} steps", t - l);
            }
        }
    }

    #[test]
    fn random_fair_never_drops_twice_in_a_row() {
        let inst = gadgets::disagree();
        let mut runner = crate::runner::Runner::new(&inst);
        let mut s = RandomFair::new(&inst, "UMS".parse().unwrap(), 11).with_drop_prob(0.9);
        let idx = runner.index().clone();
        let mut last_was_drop = vec![false; idx.len()];
        for _ in 0..500 {
            let step = s.next_step(&runner.state()).unwrap();
            for a in step.actions() {
                let cid = idx.id(a.channel()).unwrap();
                let drops_now = !a.is_lossless() && !runner.state().queue(cid).is_empty();
                if drops_now {
                    assert!(!last_was_drop[cid], "two consecutive drops on {cid}");
                }
                if a.attends() {
                    last_was_drop[cid] = drops_now;
                }
            }
            runner.step(&step);
        }
    }

    #[test]
    fn random_fair_forced_channel_matches_linear_scan() {
        // The BTreeSet-backed starvation index must pick exactly the channel
        // the original O(C) scan picked: last maximum of
        // `step_no - last_attended` (max_by_key keeps the *last* max), gated
        // on the window.
        let inst = gadgets::fig6();
        let idx = ChannelIndex::new(inst.graph());
        let state = NetworkState::initial(&inst, &idx);
        let mut s = RandomFair::new(&inst, "UMS".parse().unwrap(), 5).with_window(6);
        for _ in 0..1_000 {
            // next_step consults forced_channel after bumping step_no;
            // evaluate both selectors at that post-bump count.
            s.step_no += 1;
            let reference = (0..s.index.len())
                .max_by_key(|&c| s.step_no - s.last_attended[c])
                .filter(|&c| s.step_no - s.last_attended[c] >= s.window);
            assert_eq!(s.forced_channel(), reference, "at step {}", s.step_no);
            s.step_no -= 1;
            s.next_step(&state).unwrap();
        }
        assert!(!s.may_repeat());
    }

    #[test]
    fn random_fair_is_deterministic_per_seed() {
        let inst = gadgets::disagree();
        let idx = ChannelIndex::new(inst.graph());
        let state = NetworkState::initial(&inst, &idx);
        let mut a = RandomFair::new(&inst, "RMS".parse().unwrap(), 42);
        let mut b = RandomFair::new(&inst, "RMS".parse().unwrap(), 42);
        for _ in 0..50 {
            assert_eq!(a.next_step(&state), b.next_step(&state));
        }
    }
}

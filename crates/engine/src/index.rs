//! Dense indexing of a graph's directed channels.

use std::collections::HashMap;

use routelab_spp::{Channel, Graph, NodeId};

/// Assigns a dense id to every directed channel of a graph and precomputes
/// per-node in/out channel lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelIndex {
    channels: Vec<Channel>,
    ids: HashMap<Channel, usize>,
    in_of: Vec<Vec<usize>>,
    out_of: Vec<Vec<usize>>,
}

impl ChannelIndex {
    /// Builds the index for a graph.
    pub fn new(g: &Graph) -> Self {
        let channels: Vec<Channel> = g.channels().collect();
        let ids = channels.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let mut in_of = vec![Vec::new(); g.node_count()];
        let mut out_of = vec![Vec::new(); g.node_count()];
        for (i, c) in channels.iter().enumerate() {
            out_of[c.from.index()].push(i);
            in_of[c.to.index()].push(i);
        }
        ChannelIndex { channels, ids, in_of, out_of }
    }

    /// Number of directed channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// `true` for a graph without edges.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// The dense id of `c`, if `c` is a channel of the graph.
    pub fn id(&self, c: Channel) -> Option<usize> {
        self.ids.get(&c).copied()
    }

    /// The channel with dense id `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn channel(&self, i: usize) -> Channel {
        self.channels[i]
    }

    /// All channels in id order.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Ids of channels read by `v`, in deterministic (neighbor) order.
    pub fn in_channels(&self, v: NodeId) -> &[usize] {
        &self.in_of[v.index()]
    }

    /// Ids of channels written by `v`, in deterministic (neighbor) order.
    pub fn out_channels(&self, v: NodeId) -> &[usize] {
        &self.out_of[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_spp::gadgets;

    #[test]
    fn ids_are_dense_and_bijective() {
        let inst = gadgets::disagree();
        let idx = ChannelIndex::new(inst.graph());
        assert_eq!(idx.len(), 6);
        assert!(!idx.is_empty());
        for i in 0..idx.len() {
            assert_eq!(idx.id(idx.channel(i)), Some(i));
        }
        let bogus = Channel::new(NodeId(0), NodeId(0));
        assert_eq!(idx.id(bogus), None);
    }

    #[test]
    fn in_out_lists_cover_all_channels() {
        let inst = gadgets::fig6();
        let idx = ChannelIndex::new(inst.graph());
        let mut seen_in = 0;
        let mut seen_out = 0;
        for v in inst.nodes() {
            seen_in += idx.in_channels(v).len();
            seen_out += idx.out_channels(v).len();
            for &i in idx.in_channels(v) {
                assert_eq!(idx.channel(i).to, v);
            }
            for &i in idx.out_channels(v) {
                assert_eq!(idx.channel(i).from, v);
            }
        }
        assert_eq!(seen_in, idx.len());
        assert_eq!(seen_out, idx.len());
    }

    #[test]
    fn empty_graph() {
        let g = routelab_spp::Graph::new(1);
        let idx = ChannelIndex::new(&g);
        assert!(idx.is_empty());
        assert_eq!(idx.in_channels(NodeId(0)), &[] as &[usize]);
    }
}

//! Property-based tests for the Definition 3.2 trace relations: each
//! relation is reflexive (self-realization), transitive under composition
//! of realizations, respects the Exact ⊂ Repetition ⊂ Subsequence
//! hierarchy, and `strongest_relation` is monotone when the candidate is
//! extended in relation-preserving ways.

use proptest::prelude::*;
use routelab_engine::trace::{
    is_repetition, is_subsequence, strongest_relation, PathTrace, TraceRelation,
};
use routelab_spp::{Path, Route};

fn pi(tag: u32) -> Vec<Route> {
    // Distinct single-node assignments keyed by tag.
    vec![Route::from(Path::from_ids([tag]).expect("single-node path"))]
}

fn trace(tags: &[u32]) -> PathTrace {
    tags.iter().map(|&t| pi(t)).collect()
}

/// A short trace over a small alphabet (collisions between entries are the
/// interesting cases for the block-boundary ambiguity in `is_repetition`).
fn arb_tags() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..4, 0..8)
}

/// Per-entry repeat counts: expanding each base entry `count ≥ 1` times
/// yields a repetition realization by construction.
fn repeat(tags: &[u32], counts: &[u8]) -> Vec<u32> {
    tags.iter()
        .zip(counts.iter().cycle())
        .flat_map(|(&t, &c)| std::iter::repeat_n(t, 1 + usize::from(c % 3)))
        .collect()
}

/// Interleaves extra entries around the base, preserving it as a
/// subsequence.
fn pad(tags: &[u32], extras: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let mut e = extras.iter();
    for &t in tags {
        if let Some(&x) = e.next() {
            out.push(x);
        }
        out.push(t);
    }
    out.extend(e.copied());
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn relations_are_reflexive(tags in arb_tags()) {
        let t = trace(&tags);
        prop_assert!(is_subsequence(&t, &t));
        prop_assert!(is_repetition(&t, &t));
        prop_assert_eq!(strongest_relation(&t, &t), TraceRelation::Exact);
    }

    #[test]
    fn repetition_composes_transitively(
        tags in arb_tags(),
        c1 in prop::collection::vec(0u8..3, 1..8),
        c2 in prop::collection::vec(0u8..3, 1..8),
    ) {
        // a →rep b →rep c implies a →rep c.
        let a_tags = &tags;
        let b_tags = repeat(a_tags, &c1);
        let c_tags = repeat(&b_tags, &c2);
        let (a, b, c) = (trace(a_tags), trace(&b_tags), trace(&c_tags));
        prop_assert!(is_repetition(&a, &b));
        prop_assert!(is_repetition(&b, &c));
        prop_assert!(is_repetition(&a, &c));
    }

    #[test]
    fn subsequence_composes_transitively(
        tags in arb_tags(),
        e1 in prop::collection::vec(0u32..4, 0..6),
        e2 in prop::collection::vec(0u32..4, 0..6),
    ) {
        // a ⊑ b and b ⊑ c implies a ⊑ c.
        let a_tags = &tags;
        let b_tags = pad(a_tags, &e1);
        let c_tags = pad(&b_tags, &e2);
        let (a, b, c) = (trace(a_tags), trace(&b_tags), trace(&c_tags));
        prop_assert!(is_subsequence(&a, &b));
        prop_assert!(is_subsequence(&b, &c));
        prop_assert!(is_subsequence(&a, &c));
    }

    #[test]
    fn transitivity_holds_on_arbitrary_triples(
        a in arb_tags(), b in arb_tags(), c in arb_tags(),
    ) {
        // The implication form, on unconstrained triples: whenever both
        // premises happen to hold, so must the conclusion.
        let (a, b, c) = (trace(&a), trace(&b), trace(&c));
        if is_subsequence(&a, &b) && is_subsequence(&b, &c) {
            prop_assert!(is_subsequence(&a, &c));
        }
        if is_repetition(&a, &b) && is_repetition(&b, &c) {
            prop_assert!(is_repetition(&a, &c));
        }
    }

    #[test]
    fn hierarchy_is_respected(a in arb_tags(), b in arb_tags()) {
        // Exact ⇒ Repetition ⇒ Subsequence, so the strongest relation is
        // consistent with the individual predicates.
        let (a, b) = (trace(&a), trace(&b));
        if is_repetition(&a, &b) {
            prop_assert!(is_subsequence(&a, &b));
        }
        let strongest = strongest_relation(&a, &b);
        prop_assert_eq!(strongest >= TraceRelation::Subsequence, is_subsequence(&a, &b));
        prop_assert_eq!(strongest >= TraceRelation::Repetition, is_repetition(&a, &b));
        prop_assert_eq!(strongest == TraceRelation::Exact, a == b);
    }

    #[test]
    fn strongest_relation_is_monotone_under_extension(
        tags in prop::collection::vec(0u32..4, 1..8),
        counts in prop::collection::vec(0u8..3, 1..8),
        extras in prop::collection::vec(0u32..4, 0..6),
    ) {
        // Extending a repetition candidate by repeating the final entry
        // keeps it at least a repetition; padding a subsequence candidate
        // with arbitrary entries keeps it at least a subsequence. The
        // relation can only move *up* the lattice, never below the
        // preserved level.
        let base = trace(&tags);
        let rep_tags = repeat(&tags, &counts);
        let mut extended = rep_tags.clone();
        extended.push(*rep_tags.last().expect("non-empty"));
        prop_assert!(
            strongest_relation(&base, &trace(&extended)) >= TraceRelation::Repetition
        );

        let sub_tags = pad(&tags, &extras);
        let mut padded = sub_tags.clone();
        padded.extend(extras.iter().copied());
        prop_assert!(
            strongest_relation(&base, &trace(&padded)) >= TraceRelation::Subsequence
        );
    }
}

//! Differential suite: the interned hot path must be indistinguishable from
//! the reference route-value engine.
//!
//! The reference driver below replays the pre-interning `drive` loop over
//! [`execute_step`] + [`NetworkState`] (including its always-on cycle
//! detection). For every gadget × all 24 communication models × both
//! scheduler families, the verdict, the full step-by-step assignment trace,
//! and the final decoded network state must be identical.

use std::collections::HashMap;

use routelab_core::model::CommModel;
use routelab_engine::exec::execute_step;
use routelab_engine::index::ChannelIndex;
use routelab_engine::outcome::{drive, RunOutcome};
use routelab_engine::runner::Runner;
use routelab_engine::schedule::{Periodic, RandomFair, RoundRobin, Scheduler};
use routelab_engine::state::NetworkState;
use routelab_engine::trace::PathTrace;
use routelab_spp::{gadgets, SppInstance};

struct Reference {
    outcome: RunOutcome,
    trace: PathTrace,
    state: NetworkState,
}

/// The pre-interning engine, verbatim: route-value state, per-step hashing
/// for cycle detection, decoded assignment trace.
fn reference_drive<S: Scheduler>(
    inst: &SppInstance,
    scheduler: &mut S,
    max_steps: usize,
) -> Reference {
    let index = ChannelIndex::new(inst.graph());
    let mut state = NetworkState::initial(inst, &index);
    let mut trace = PathTrace::new();
    trace.push(state.assignment());
    let mut seen: HashMap<(u64, u64), (usize, usize)> = HashMap::new();
    let mut distinct = 1;
    let mut outcome = None;
    for step_no in 0..max_steps {
        if state.is_quiescent() {
            outcome =
                Some(RunOutcome::Converged { steps: step_no, assignment: state.assignment() });
            break;
        }
        let key = (state.fingerprint(), scheduler.fingerprint());
        if let Some(&(first_seen, assignments_then)) = seen.get(&key) {
            outcome = Some(RunOutcome::CycleDetected {
                first_seen,
                period: step_no - first_seen,
                oscillating: distinct > assignments_then,
            });
            break;
        }
        seen.insert(key, (step_no, distinct));
        let Some(step) = scheduler.next_step(&state) else {
            outcome = Some(RunOutcome::ScheduleExhausted { steps: step_no });
            break;
        };
        let effect = execute_step(inst, &index, &mut state, &step);
        trace.push(state.assignment());
        if !effect.changed.is_empty() {
            distinct += 1;
        }
    }
    let outcome = outcome.unwrap_or_else(|| {
        if state.is_quiescent() {
            RunOutcome::Converged { steps: max_steps, assignment: state.assignment() }
        } else {
            RunOutcome::StepLimit { steps: max_steps }
        }
    });
    Reference { outcome, trace, state }
}

fn assert_identical(name: &str, model: CommModel, sched: &str, r: &Reference, runner: &Runner<'_>) {
    assert_eq!(
        runner.trace(),
        &r.trace,
        "{name} {model} {sched}: step traces diverge at step {:?}",
        runner.trace().iter().zip(r.trace.iter()).position(|(a, b)| a != b)
    );
    let decoded = runner.state().to_network_state();
    assert_eq!(decoded, r.state, "{name} {model} {sched}: final states diverge");
}

#[test]
fn round_robin_verdicts_traces_and_states_are_identical() {
    for (name, inst) in gadgets::corpus() {
        for model in CommModel::all() {
            let mut ref_sched = RoundRobin::new(&inst, model);
            let reference = reference_drive(&inst, &mut ref_sched, 1_500);

            let mut runner = Runner::new(&inst);
            let mut sched = RoundRobin::new(&inst, model);
            let outcome = drive(&mut runner, &mut sched, 1_500);

            assert_eq!(outcome, reference.outcome, "{name} {model} round-robin verdict");
            assert_identical(name, model, "round-robin", &reference, &runner);
        }
    }
}

#[test]
fn random_fair_verdicts_traces_and_states_are_identical() {
    // The interned drive skips cycle tracking for RandomFair
    // (`may_repeat() == false`); the reference keeps the old always-on
    // detection. Verdicts must still agree because RandomFair's fingerprint
    // never repeats. Scheduler RNG streams are exercised by both runs
    // independently (same seed), so any drift in the scheduler rework would
    // also surface here.
    for (name, inst) in gadgets::corpus() {
        for model in CommModel::all() {
            for seed in [3, 11] {
                let mut ref_sched = RandomFair::new(&inst, model, seed);
                let reference = reference_drive(&inst, &mut ref_sched, 600);

                let mut runner = Runner::new(&inst);
                let mut sched = RandomFair::new(&inst, model, seed);
                let outcome = drive(&mut runner, &mut sched, 600);

                assert_eq!(outcome, reference.outcome, "{name} {model} seed {seed} verdict");
                assert_identical(name, model, "random-fair", &reference, &runner);
            }
        }
    }
}

#[test]
fn periodic_verdicts_traces_and_states_are_identical() {
    for (name, inst) in gadgets::corpus() {
        for model in ["R1O", "RMS", "REA", "UMS"] {
            let model: CommModel = model.parse().unwrap();
            let periods: Vec<u64> = (0..inst.node_count() as u64).map(|i| 1 + i % 3).collect();
            let mut ref_sched = Periodic::new(&inst, model, periods.clone());
            let reference = reference_drive(&inst, &mut ref_sched, 1_000);

            let mut runner = Runner::new(&inst);
            let mut sched = Periodic::new(&inst, model, periods);
            let outcome = drive(&mut runner, &mut sched, 1_000);

            assert_eq!(outcome, reference.outcome, "{name} {model} periodic verdict");
            assert_identical(name, model, "periodic", &reference, &runner);
        }
    }
}

#[test]
fn shared_table_runs_match_reference_on_generated_instances() {
    // Beyond the hand-built gadgets: random policy instances and Gao–Rexford
    // topologies, driven with a shared route table (the Monte Carlo
    // configuration).
    use routelab_spp::generator::{gao_rexford_instance, random_instance, RandomSppConfig};
    use routelab_spp::RouteTable;

    let mut instances = Vec::new();
    for seed in 0..4 {
        instances.push(
            random_instance(&RandomSppConfig {
                nodes: 6,
                extra_edges: 3,
                max_paths_per_node: 4,
                max_path_len: 5,
                seed,
            })
            .unwrap(),
        );
        instances.push(gao_rexford_instance(12, seed, 6, 4).unwrap());
    }
    for inst in &instances {
        let table = RouteTable::new(inst);
        for model in ["REA", "UMS", "R1O"] {
            let model: CommModel = model.parse().unwrap();
            let mut ref_sched = RandomFair::new(inst, model, 17);
            let reference = reference_drive(inst, &mut ref_sched, 800);

            let mut runner = Runner::with_table(inst, &table);
            let mut sched = RandomFair::new(inst, model, 17);
            let outcome = drive(&mut runner, &mut sched, 800);

            assert_eq!(outcome, reference.outcome, "{model} verdict");
            assert_identical("generated", model, "random-fair", &reference, &runner);
        }
    }
}

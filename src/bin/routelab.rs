//! The `routelab` command-line tool: audit routing policies, check
//! convergence per communication model, solve for stable assignments, and
//! replay executions across models.
//!
//! ```text
//! routelab models
//! routelab audit    <instance>
//! routelab solve    <instance>
//! routelab check    <instance> <model> [--witness]
//! routelab realize  <instance> <from-model> <to-model> [steps]
//! routelab plan     <from-model> <to-model> [instance]
//! routelab pipeline "<source> | <stage> | …"
//! routelab transforms list
//! routelab simulate <instance> <model> [runs] [--threads N]
//! routelab fig3 | fig4
//! routelab obs summarize <telemetry-dir> [--json]
//! routelab trace record <instance> <model>
//! routelab trace explain <trace.ndjson>
//! routelab trace export-chrome <trace.ndjson> [-o <out.json>]
//! ```
//!
//! Every subcommand also accepts `--obs` (write NDJSON telemetry under the
//! results dir; equivalent to `ROUTELAB_OBS=1`), `--trace` (record a causal
//! flight-recorder trace; equivalent to `ROUTELAB_TRACE=1`) and `--quiet`
//! (suppress progress/heartbeat output on stderr). `trace record` captures a
//! divergent run of a gadget × model cell; `trace explain` reconstructs its
//! oscillation cycle and cross-checks it against the explorer's witness;
//! `trace export-chrome` emits Chrome `trace_event` JSON loadable in
//! `chrome://tracing` or Perfetto.
//!
//! `<instance>` is either a gadget name (`DISAGREE`, `FIG6`, `FIG7`, `FIG8`,
//! `FIG9`, `BAD-GADGET`, `GOOD-GADGET`, `LINE2`) or a path to an `spp v1`
//! text file (see `routelab::spp::format`).
//!
//! `pipeline` and `plan` resolve names against the registry in
//! `routelab::realize::registry` (`transforms list` prints it): a pipeline
//! is a `|`-separated chain — a generator first (`fig6`, `wheel 5`), then
//! transforms (`split`, `pad`, `embed UMS`), model pins (`RMS`), and checks
//! (`verify`) — type-checked for model compatibility before anything runs.
//! `plan` searches the realization lattice for the strongest composite
//! transform route between two models and validates it end to end on a fair
//! run before printing it.

use std::process::ExitCode;

use routelab::core::closure::derive_bounds;
use routelab::core::edges::foundational_facts;
use routelab::core::model::CommModel;
use routelab::engine::outcome::{drive, RunOutcome};
use routelab::engine::runner::Runner;
use routelab::engine::schedule::{Cyclic, RoundRobin, Scheduler};
use routelab::explore::graph::ExploreConfig;
use routelab::explore::oscillation::{analyze, Verdict};
use routelab::explore::witness::oscillation_witness;
use routelab::realize::verify::verify_path;
use routelab::sim::cli::CommonOpts;
use routelab::sim::flight::{export_chrome, oscillation_cycle, parse_trace, render_explain};
use routelab::sim::montecarlo::{try_run_grid_with, CellConfig};
use routelab::sim::pool::PoolConfig;
use routelab::sim::survey::{survey_instance, SurveyConfig, SurveyOutcome};
use routelab::spp::solve::{enumerate_stable_assignments, fmt_assignment};
use routelab::spp::{dispute, format, gadgets, SppInstance};

fn load_instance(spec: &str) -> Result<SppInstance, String> {
    for (name, inst) in gadgets::corpus() {
        if name.eq_ignore_ascii_case(spec) {
            return Ok(inst);
        }
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec:?}: {e}"))?;
    format::from_text(&text).map_err(|e| format!("cannot parse {spec:?}: {e}"))
}

fn parse_model(s: &str) -> Result<CommModel, String> {
    s.parse().map_err(|e| format!("{e}"))
}

fn cmd_models() {
    println!("the 24 communication models (reliability × neighbors × messages):\n");
    for m in CommModel::all() {
        println!("  {m}  ({:?})", m.family());
    }
    println!("\npolling = learn neighbors' current state; message-passing = one queued");
    println!("message per channel; queueing = unrestricted (closest to deployed BGP).");
}

fn cmd_audit(inst: &SppInstance) -> Result<(), String> {
    print!("{inst}");
    let solutions = enumerate_stable_assignments(inst, 10_000_000).map_err(|e| e.to_string())?;
    println!("stable path assignments: {}", solutions.len());
    for s in solutions.iter().take(8) {
        println!("  {}", fmt_assignment(inst, s));
    }
    if solutions.len() > 8 {
        println!("  … and {} more", solutions.len() - 8);
    }
    match dispute::find_dispute_wheel(inst) {
        Some(w) => println!("dispute wheel: {}", w.display(inst)),
        None => println!("no dispute wheel: converges under every fair schedule in every model"),
    }
    println!("\nper-model verdicts:");
    let cfg = SurveyConfig {
        explore: ExploreConfig { channel_cap: 3, ..ExploreConfig::default() },
        ..SurveyConfig::default()
    };
    for entry in survey_instance(inst, &cfg) {
        let v = match entry.outcome {
            SurveyOutcome::Oscillates { via: None } => "can oscillate".into(),
            SurveyOutcome::Oscillates { via: Some(p) } => format!("can oscillate (via {p})"),
            SurveyOutcome::Converges { via: None } => "always converges".into(),
            SurveyOutcome::Converges { via: Some(p) } => format!("always converges (via {p})"),
            SurveyOutcome::Unknown => "undecided within bounds".into(),
        };
        println!("  {}: {v}", entry.model);
    }
    Ok(())
}

fn cmd_solve(inst: &SppInstance) -> Result<(), String> {
    let solutions = enumerate_stable_assignments(inst, 50_000_000).map_err(|e| e.to_string())?;
    println!("{} stable path assignment(s)", solutions.len());
    for s in &solutions {
        println!("  {}", fmt_assignment(inst, s));
    }
    Ok(())
}

fn cmd_check(inst: &SppInstance, model: CommModel, want_witness: bool) -> Result<(), String> {
    let cfg = ExploreConfig { channel_cap: 3, max_states: 1_000_000, ..ExploreConfig::default() };
    match analyze(inst, model, &cfg) {
        Verdict::CanOscillate { states, scc_size } => {
            println!("{model}: CAN OSCILLATE (fair SCC of {scc_size} states; {states} explored)");
            if want_witness {
                let w = oscillation_witness(inst, model, &cfg)
                    .ok_or("witness extraction failed unexpectedly")?;
                println!("witness prefix ({} steps):", w.prefix.len());
                for s in &w.prefix {
                    println!("  {s}");
                }
                println!("witness cycle ({} steps, repeat forever):", w.cycle.len());
                for s in &w.cycle {
                    println!("  {s}");
                }
                let mut runner = Runner::new(inst);
                runner.run(&w.prefix);
                let mut sched = Cyclic::new(w.cycle);
                if let RunOutcome::CycleDetected { period, .. } =
                    drive(&mut runner, &mut sched, 10_000)
                {
                    println!("replay confirms a state cycle of period {period}");
                }
            }
        }
        Verdict::AlwaysConverges { states } => {
            println!("{model}: ALWAYS CONVERGES (exhaustive over {states} states)");
        }
        Verdict::NoOscillationWithinBound { states } => {
            println!("{model}: no oscillation found within bounds ({states} states; verdict open)");
        }
    }
    Ok(())
}

fn cmd_realize(
    inst: &SppInstance,
    from: CommModel,
    to: CommModel,
    steps: usize,
) -> Result<(), String> {
    let mut sched = RoundRobin::new(inst, from);
    let mut runner = Runner::new(inst);
    let mut seq = Vec::with_capacity(steps);
    for _ in 0..steps {
        let s = sched.next_step(&runner.state()).expect("round robin is infinite");
        runner.step(&s);
        seq.push(s);
    }
    match verify_path(inst, &seq, from, to).map_err(|e| e.to_string())? {
        Some(report) => {
            println!("{report}");
            println!("holds: {}", report.holds());
        }
        None => println!("no realization chain exists from {from} into {to}"),
    }
    Ok(())
}

fn cmd_plan(args: &[String]) -> Result<(), String> {
    let usage = "usage: routelab plan <from-model> <to-model> [instance]";
    let from = parse_model(args.first().ok_or(usage)?)?;
    let to = parse_model(args.get(1).ok_or(usage)?)?;
    let spec = args.get(2).map(String::as_str).unwrap_or("FIG6");
    let inst = load_instance(spec)?;
    let reg = routelab::realize::Registry::global();
    let out = routelab::sim::pipeline::render_plan(reg, &inst, spec, from, to)
        .map_err(|e| e.to_string())?;
    print!("{out}");
    Ok(())
}

fn cmd_pipeline(args: &[String]) -> Result<(), String> {
    let usage = "usage: routelab pipeline \"<source> | <stage> | …\"\n\
                 \u{20}  e.g. routelab pipeline \"fig6 | split | pad | verify\"";
    let spec = match args {
        [one] => one.clone(),
        [] => return Err(usage.into()),
        // Allow an unquoted pipeline: rejoin the shell-split words.
        many => many.join(" "),
    };
    let reg = routelab::realize::Registry::global();
    let out = routelab::sim::pipeline::render_pipeline(reg, &spec).map_err(|e| e.to_string())?;
    print!("{out}");
    Ok(())
}

fn cmd_transforms(args: &[String]) -> Result<(), String> {
    let usage = "usage: routelab transforms list";
    match args.first().map(String::as_str) {
        Some("list") => {
            let reg = routelab::realize::Registry::global();
            print!("{}", routelab::sim::pipeline::render_transforms_list(reg));
            Ok(())
        }
        _ => Err(usage.into()),
    }
}

fn cmd_simulate(
    inst: &SppInstance,
    model: CommModel,
    runs: usize,
    pool: &PoolConfig,
) -> Result<(), String> {
    let cfg = CellConfig { runs, max_steps: 30_000, seed: 42, drop_prob: 0.25 };
    // One cell, decomposed into per-run jobs on the worker pool; the
    // statistics are identical for every thread count.
    let cells = try_run_grid_with(inst, &[model], &cfg, pool).map_err(|e| e.to_string())?;
    let stats = cells[0].stats;
    println!(
        "{model}: {}/{} runs converged (rate {:.2}), mean steps {:.1}, mean messages {:.1}, mean drops {:.1}",
        stats.converged,
        stats.runs,
        stats.convergence_rate(),
        stats.mean_steps,
        stats.mean_messages,
        stats.mean_dropped
    );
    Ok(())
}

fn cmd_figure(which: u8) {
    let bounds = derive_bounds(&foundational_facts());
    let cols = if which == 3 { CommModel::all_reliable() } else { CommModel::all_unreliable() };
    println!("Figure {which} (computed from the foundational results):\n");
    println!("{}", bounds.render(&cols));
}

fn cmd_obs_summarize(args: &[String]) -> Result<(), String> {
    let usage = "usage: routelab obs summarize <telemetry-dir> [--json]";
    match args.first().map(String::as_str) {
        Some("summarize") => {
            let json = args.iter().any(|a| a == "--json");
            let dir = args.iter().skip(1).find(|a| !a.starts_with("--")).ok_or(usage)?;
            let dir = std::path::Path::new(dir);
            // An absent or empty telemetry dir just means nothing was
            // recorded yet — explain rather than fail.
            if !dir.is_dir() {
                println!(
                    "no telemetry directory at {} — run a command with --obs \
                     (or ROUTELAB_OBS=1) first",
                    dir.display()
                );
                return Ok(());
            }
            let summary = routelab::obs::summarize_dir(dir)
                .map_err(|e| format!("cannot summarize {}: {e}", dir.display()))?;
            if summary.files == 0 {
                println!(
                    "no *.ndjson telemetry files in {} — run a command with --obs \
                     (or ROUTELAB_OBS=1) first",
                    dir.display()
                );
                return Ok(());
            }
            if json {
                println!("{}", summary.to_json_string());
            } else {
                print!("{}", summary.render_table());
            }
            Ok(())
        }
        _ => Err(usage.into()),
    }
}

/// The exploration bounds shared by `check`, `trace record`, and the
/// `trace explain` cross-check: identical bounds keep the recomputed witness
/// bit-identical to the one the trace was recorded from.
fn witness_config() -> ExploreConfig {
    ExploreConfig { channel_cap: 3, max_states: 1_000_000, ..ExploreConfig::default() }
}

fn cmd_trace(args: &[String], opts: &CommonOpts) -> Result<(), String> {
    let usage = "usage: routelab trace record <instance> <model>\n\
                 \u{20}      routelab trace explain <trace.ndjson>\n\
                 \u{20}      routelab trace export-chrome <trace.ndjson> [-o <out.json>]";
    match args.first().map(String::as_str) {
        Some("record") => {
            let spec = args.get(1).ok_or(usage)?;
            let model = parse_model(args.get(2).ok_or(usage)?)?;
            let inst = load_instance(spec)?;
            cmd_trace_record(&inst, spec, model, opts)
        }
        Some("explain") => cmd_trace_explain(args.get(1).ok_or(usage)?, opts),
        Some("export-chrome") => {
            let path = args.get(1).ok_or(usage)?;
            let out =
                args.iter().position(|a| a == "-o" || a == "--out").and_then(|i| args.get(i + 1));
            cmd_trace_export(path, out.map(String::as_str))
        }
        _ => Err(usage.into()),
    }
}

/// Records a divergent run of `inst` under `model`: finds the explorer's
/// oscillation witness (capturing the explorer's own phase profile in the
/// same trace), then replays prefix + cycle with the flight recorder on.
fn cmd_trace_record(
    inst: &SppInstance,
    spec: &str,
    model: CommModel,
    opts: &CommonOpts,
) -> Result<(), String> {
    // Enable tracing before the exploration so the explorer's phase spans
    // land in the same file (idempotent when --trace already enabled it).
    let path = routelab::obs::enable_trace_to_dir(&routelab::obs::telemetry_dir(), "routelab")
        .ok_or("cannot create a trace file under the telemetry directory")?;
    routelab::obs::trace_note("gadget", spec);
    routelab::obs::trace_note("model", &model.to_string());
    opts.progress(format!("searching {spec} × {model} for a fair oscillation …"));
    let w = oscillation_witness(inst, model, &witness_config()).ok_or_else(|| {
        format!(
            "{spec} under {model}: no fair oscillation within bounds — nothing to record \
             (try a divergent cell such as FIG6 REO or DISAGREE R1O)"
        )
    })?;
    opts.progress(format!(
        "replaying witness ({} prefix steps + {}-step cycle) with the flight recorder on",
        w.prefix.len(),
        w.cycle.len()
    ));
    let mut runner = Runner::new(inst);
    runner.run(&w.prefix);
    let mut sched = Cyclic::new(w.cycle);
    match drive(&mut runner, &mut sched, 10_000) {
        RunOutcome::CycleDetected { period, oscillating, .. } => {
            opts.progress(format!("cycle confirmed: period {period}, oscillating {oscillating}"));
        }
        other => return Err(format!("witness replay did not cycle: {other:?}")),
    }
    routelab::obs::shutdown();
    // The trace path is the last stdout line so scripts can `tail -n 1` it.
    println!("{}", path.display());
    Ok(())
}

/// Reconstructs the oscillation cycle recorded in a trace file and, when the
/// trace names its gadget × model cell, cross-checks the cycle's route
/// adoptions against a fresh replay of the explorer's witness.
fn cmd_trace_explain(path: &str, opts: &CommonOpts) -> Result<(), String> {
    let content =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let tf = parse_trace(&content)?;
    let report = oscillation_cycle(&tf)?;
    print!("{}", render_explain(&tf, &report));
    let (Some(gadget), Some(model)) = (tf.notes.get("gadget"), tf.notes.get("model")) else {
        opts.progress("(trace carries no gadget/model notes: skipping the witness cross-check)");
        return Ok(());
    };
    let inst = load_instance(gadget)?;
    let model = parse_model(model)?;
    opts.progress(format!("cross-checking against the explorer's witness for {gadget} × {model}"));
    let w = oscillation_witness(&inst, model, &witness_config()).ok_or_else(|| {
        format!("cross-check failed: the explorer finds no oscillation for {gadget} × {model}")
    })?;
    // Replay the witness exactly as `trace record` did and collect the route
    // adoptions inside the trace's own cycle window [first_seen,
    // first_seen + period) — determinism makes this an equality check.
    let Some(cycle_steps) = (report.first_seen + report.period).checked_sub(w.prefix.len() as u64)
    else {
        return Err("cross-check failed: the trace's cycle window ends before the witness \
                    prefix does — the trace was not recorded from this witness"
            .into());
    };
    let mut runner = Runner::new(&inst);
    for s in &w.prefix {
        runner.step(s);
    }
    let mut expected = std::collections::BTreeSet::new();
    let cycle_schedule = w.cycle.iter().cycle().take(cycle_steps as usize);
    for (global_step, s) in (w.prefix.len() as u64..).zip(cycle_schedule) {
        let effect = runner.step(s);
        if global_step >= report.first_seen {
            for (v, _, new) in &effect.changed {
                expected.insert((inst.name(*v).to_string(), inst.fmt_route(new)));
            }
        }
    }
    if expected == report.pi_changes {
        println!(
            "witness cross-check: consistent — the recorded cycle's route adoptions match \
             the explorer's witness replay"
        );
        Ok(())
    } else {
        let fmt = |set: &std::collections::BTreeSet<(String, String)>| {
            set.iter().map(|(v, r)| format!("{v}←{r}")).collect::<Vec<_>>().join(" ")
        };
        Err(format!(
            "witness cross-check MISMATCH:\n  trace:   {}\n  witness: {}",
            fmt(&report.pi_changes),
            fmt(&expected)
        ))
    }
}

fn cmd_trace_export(path: &str, out: Option<&str>) -> Result<(), String> {
    let content =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let tf = parse_trace(&content)?;
    let json = export_chrome(&tf);
    match out {
        Some(out) => {
            std::fs::write(out, &json).map_err(|e| format!("cannot write {out:?}: {e}"))?;
            println!(
                "wrote {out} ({} bytes) — load in chrome://tracing or https://ui.perfetto.dev",
                json.len()
            );
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn run(opts: &CommonOpts) -> Result<(), String> {
    let args = &opts.rest;
    let usage = "usage: routelab <models|audit|solve|check|realize|plan|pipeline|transforms|\
         simulate|fig3|fig4|obs|trace> …\n\
         run `routelab help` for details";
    match args.first().map(String::as_str) {
        Some("models") => cmd_models(),
        Some("audit") => {
            let inst = load_instance(args.get(1).ok_or(usage)?)?;
            cmd_audit(&inst)?;
        }
        Some("solve") => {
            let inst = load_instance(args.get(1).ok_or(usage)?)?;
            cmd_solve(&inst)?;
        }
        Some("check") => {
            let inst = load_instance(args.get(1).ok_or(usage)?)?;
            let model = parse_model(args.get(2).ok_or(usage)?)?;
            let witness = args.iter().any(|a| a == "--witness");
            cmd_check(&inst, model, witness)?;
        }
        Some("realize") => {
            let inst = load_instance(args.get(1).ok_or(usage)?)?;
            let from = parse_model(args.get(2).ok_or(usage)?)?;
            let to = parse_model(args.get(3).ok_or(usage)?)?;
            let steps = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(24);
            cmd_realize(&inst, from, to, steps)?;
        }
        Some("plan") => cmd_plan(&args[1..])?,
        Some("pipeline") => cmd_pipeline(&args[1..])?,
        Some("transforms") => cmd_transforms(&args[1..])?,
        Some("simulate") => {
            // `--threads N` is stripped into `opts.pool` by the common parser.
            let inst = load_instance(args.get(1).ok_or(usage)?)?;
            let model = parse_model(args.get(2).ok_or(usage)?)?;
            let runs = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50);
            cmd_simulate(&inst, model, runs, &opts.pool)?;
        }
        Some("fig3") => cmd_figure(3),
        Some("fig4") => cmd_figure(4),
        Some("obs") => cmd_obs_summarize(&args[1..])?,
        Some("trace") => cmd_trace(&args[1..], opts)?,
        Some("help") | None => {
            println!("{usage}");
            println!("\ninstances: DISAGREE FIG6 FIG7 FIG8 FIG9 BAD-GADGET GOOD-GADGET LINE2");
            println!("           or a path to an `spp v1` file");
            println!("models:    [RU][1ME][OSFA], e.g. RMS, R1O, REA");
            println!("pipelines: `routelab pipeline \"fig6 | split | pad | verify\"` chains");
            println!("           registry stages; `routelab transforms list` names them;");
            println!("           `routelab plan REA UMS` finds and verifies a composite route");
            println!("telemetry: add --obs (or ROUTELAB_OBS=1) to any subcommand, then");
            println!("           `routelab obs summarize results/telemetry` to aggregate");
            println!("tracing:   `routelab trace record FIG6 REO` captures a divergent run,");
            println!("           `trace explain <file>` reconstructs its oscillation cycle,");
            println!("           `trace export-chrome <file>` emits Perfetto-loadable JSON");
        }
        Some(other) => return Err(format!("unknown subcommand {other:?}\n{usage}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = routelab::sim::cli::parse_common("routelab");
    let code = match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    };
    // Flush any buffered telemetry before the process unwinds.
    opts.finish();
    code
}

//! # routelab
//!
//! A library for studying how **communication models** affect the
//! convergence of distributed autonomous routing algorithms (BGP-style
//! path-vector protocols), reproducing Jaggard, Ramachandran & Wright,
//! *The Impact of Communication Models on Routing-Algorithm Convergence*
//! (DIMACS TR 2008-06 / ICDCS 2009).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`spp`] — the Stable Paths Problem substrate (instances, gadgets,
//!   generators, stable-assignment solver, dispute wheels),
//! * [`core`] — the taxonomy of 24 communication models, activation steps,
//!   realization strengths, the Sec. 3.4 closure, and the published
//!   Figure 3/4 tables,
//! * [`engine`] — the Definition 2.3 execution engine (channels, state,
//!   schedulers, traces, the Appendix A scripted runs),
//! * [`realize`] — the constructive realization transformations of the
//!   positive theorems, with end-to-end verification,
//! * [`explore`] — bounded exhaustive model checking (fair-oscillation
//!   analysis, trace-realization search),
//! * [`sim`] — the experiment harness (oscillation survey, Monte-Carlo
//!   statistics, report tables),
//! * [`obs`] — zero-dependency observability (spans, counters, log-scale
//!   histograms, NDJSON telemetry, and offline summarization).
//!
//! # Quickstart
//!
//! ```
//! use routelab::spp::gadgets;
//! use routelab::explore::{analyze, Verdict, ExploreConfig};
//!
//! // DISAGREE (Fig. 5) oscillates under event-driven message passing…
//! let disagree = gadgets::disagree();
//! let cfg = ExploreConfig::default();
//! assert!(matches!(
//!     analyze(&disagree, "R1O".parse()?, &cfg),
//!     Verdict::CanOscillate { .. }
//! ));
//! // …but always converges when nodes poll their neighbors' current state.
//! assert!(matches!(
//!     analyze(&disagree, "REA".parse()?, &cfg),
//!     Verdict::AlwaysConverges { .. }
//! ));
//! # Ok::<(), routelab::core::model::ParseModelError>(())
//! ```

pub use routelab_core as core;
pub use routelab_engine as engine;
pub use routelab_explore as explore;
pub use routelab_obs as obs;
pub use routelab_realize as realize;
pub use routelab_sim as sim;
pub use routelab_spp as spp;

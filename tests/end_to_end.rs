//! Cross-crate integration: text format → instance → execution →
//! transformation → model checking, all through the public API.

use routelab::core::model::CommModel;
use routelab::core::validate::check_sequence;
use routelab::engine::outcome::{drive, RunOutcome};
use routelab::engine::runner::Runner;
use routelab::engine::schedule::{RandomFair, RoundRobin, Scheduler};
use routelab::explore::graph::ExploreConfig;
use routelab::explore::oscillation::{analyze, Verdict};
use routelab::realize::verify::verify_path;
use routelab::spp::{format, gadgets};

/// A DISAGREE variant written in the text format by hand.
const DISAGREE_TEXT: &str = "\
spp v1
node d
node x
node y
edge x d
edge y d
edge x y
dest d
prefs x xyd xd
prefs y yxd yd
";

#[test]
fn parsed_instance_behaves_like_the_gadget() {
    let inst = format::from_text(DISAGREE_TEXT).unwrap();
    assert_eq!(inst, gadgets::disagree());
    // It oscillates in R1O and converges in REA, like the built-in one.
    let cfg = ExploreConfig::default();
    assert!(matches!(analyze(&inst, "R1O".parse().unwrap(), &cfg), Verdict::CanOscillate { .. }));
    assert!(matches!(
        analyze(&inst, "REA".parse().unwrap(), &cfg),
        Verdict::AlwaysConverges { .. }
    ));
}

#[test]
fn serialization_round_trips_through_execution() {
    for (name, inst) in gadgets::corpus() {
        let text = format::to_text(&inst);
        let back = format::from_text(&text).unwrap();
        // Identical instances produce identical round-robin traces.
        let mut r1 = Runner::new(&inst);
        let mut r2 = Runner::new(&back);
        let mut s1 = RoundRobin::new(&inst, "RMS".parse().unwrap());
        let mut s2 = RoundRobin::new(&back, "RMS".parse().unwrap());
        for _ in 0..3 * inst.node_count() {
            let step1 = s1.next_step(&r1.state()).unwrap();
            let step2 = s2.next_step(&r2.state()).unwrap();
            assert_eq!(step1, step2, "{name}");
            r1.step(&step1);
            r2.step(&step2);
        }
        assert_eq!(r1.trace(), r2.trace(), "{name}");
    }
}

#[test]
fn recorded_runs_replay_in_stronger_models() {
    // Record a randomized fair U1O run on FIG7, realize it in RMS (exactly)
    // and replay: same trace.
    let inst = gadgets::fig7();
    let from: CommModel = "U1O".parse().unwrap();
    let mut sched = RandomFair::new(&inst, from, 99).with_drop_prob(0.3);
    let mut runner = Runner::new(&inst);
    let mut seq = Vec::new();
    for _ in 0..60 {
        let s = sched.next_step(&runner.state()).unwrap();
        runner.step(&s);
        seq.push(s);
    }
    check_sequence(from, inst.graph(), &seq).unwrap();
    let report =
        verify_path(&inst, &seq, from, "RMS".parse().unwrap()).unwrap().expect("chain exists");
    assert!(report.holds(), "{report}");
}

#[test]
fn every_model_round_robin_converges_on_wheel_free_instances() {
    for (name, inst) in [("GOOD-GADGET", gadgets::good_gadget()), ("FIG7", gadgets::fig7())] {
        for model in CommModel::all() {
            let mut runner = Runner::new(&inst);
            let mut sched = RoundRobin::new(&inst, model);
            match drive(&mut runner, &mut sched, 50_000) {
                RunOutcome::Converged { .. } => {}
                other => panic!("{name} under {model}: {other:?}"),
            }
        }
    }
}

#[test]
fn umbrella_reexports_are_usable() {
    // Spot-check that the re-exported module tree is complete enough to
    // write a whole workflow against `routelab::…` paths only.
    let inst = routelab::spp::gadgets::line2();
    let solutions = routelab::spp::solve::enumerate_stable_assignments(&inst, 1_000).unwrap();
    assert_eq!(solutions.len(), 1);
    let bounds =
        routelab::core::closure::derive_bounds(&routelab::core::edges::foundational_facts());
    assert!(bounds.is_consistent());
    let stats = routelab::sim::montecarlo::run_cell(
        &inst,
        "RMS".parse().unwrap(),
        &routelab::sim::montecarlo::CellConfig { runs: 3, max_steps: 500, seed: 0, drop_prob: 0.0 },
    );
    assert_eq!(stats.converged, 3);
}

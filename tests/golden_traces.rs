//! Golden-trace snapshot tests: the Appendix A step tables (Examples
//! A.1–A.5), rendered through the same code path as `exp-examples`
//! (`routelab::sim::examples::step_table`), compared byte-for-byte against
//! the snapshots under `tests/golden/`.
//!
//! To regenerate after an intentional rendering change:
//!
//! ```text
//! ROUTELAB_BLESS=1 cargo test --test golden_traces
//! ```

use std::fs;
use std::path::PathBuf;

use routelab::engine::paper_runs::{self, PaperRun};
use routelab::sim::examples::step_table;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.txt"))
}

fn check(name: &str, run: &PaperRun) {
    let r = step_table(run);
    assert!(r.matches_paper, "{}: step table diverges from the paper:\n{}", run.name, r.table);
    let path = golden_path(name);
    if std::env::var_os("ROUTELAB_BLESS").is_some() {
        fs::write(&path, &r.table).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             `ROUTELAB_BLESS=1 cargo test --test golden_traces`",
            path.display()
        )
    });
    assert_eq!(
        r.table, want,
        "{name}: rendered step table differs from the golden snapshot; if the \
         change is intentional, regenerate with `ROUTELAB_BLESS=1 cargo test \
         --test golden_traces` and commit the diff"
    );
}

#[test]
fn a1_step_table_matches_golden() {
    check("a1_steps", &paper_runs::a1_r1o().0);
}

#[test]
fn a2_step_table_matches_golden() {
    check("a2_steps", &paper_runs::a2_reo().0);
}

#[test]
fn a3_step_table_matches_golden() {
    check("a3_steps", &paper_runs::a3_reo());
}

#[test]
fn a4_step_table_matches_golden() {
    check("a4_steps", &paper_runs::a4_rea());
}

#[test]
fn a5_step_table_matches_golden() {
    check("a5_steps", &paper_runs::a5_rea());
}

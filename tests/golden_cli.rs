//! Golden snapshots for the registry-backed CLI surface: `routelab
//! transforms list`, a `routelab pipeline "fig6 | split | pad | verify"`
//! end-to-end run, and a verified `routelab plan` route — byte-for-byte
//! against `tests/golden/`, rendered through the same
//! `routelab::sim::pipeline` code path the binary prints. Typed-error
//! cases (unknown names, model-incompatible stages) ride along.
//!
//! To regenerate after an intentional rendering change:
//!
//! ```text
//! ROUTELAB_BLESS=1 cargo test --test golden_cli
//! ```

use std::fs;
use std::path::PathBuf;

use routelab::core::model::CommModel;
use routelab::realize::plan::PipelineError;
use routelab::realize::registry::Registry;
use routelab::sim::pipeline::{render_pipeline, render_plan, render_transforms_list};
use routelab::spp::gadgets;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.txt"))
}

fn check(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("ROUTELAB_BLESS").is_some() {
        fs::write(&path, rendered).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             `ROUTELAB_BLESS=1 cargo test --test golden_cli`",
            path.display()
        )
    });
    assert_eq!(
        rendered, want,
        "{name}: rendered output differs from the golden snapshot; if the \
         change is intentional, regenerate with `ROUTELAB_BLESS=1 cargo test \
         --test golden_cli` and commit the diff"
    );
}

#[test]
fn transforms_list_matches_golden() {
    check("transforms_list", &render_transforms_list(Registry::global()));
}

#[test]
fn pipeline_fig6_split_pad_verify_matches_golden() {
    let out = render_pipeline(Registry::global(), "fig6 | split | pad | verify")
        .expect("the flagship pipeline type-checks and runs");
    check("pipeline_fig6", &out);
}

#[test]
fn plan_rea_ums_matches_golden() {
    let inst = gadgets::fig6();
    let from: CommModel = "REA".parse().unwrap();
    let to: CommModel = "UMS".parse().unwrap();
    let out =
        render_plan(Registry::global(), &inst, "FIG6", from, to).expect("REA realizes inside UMS");
    check("plan_rea_ums", &out);
}

#[test]
fn unknown_stage_name_is_a_typed_error() {
    let err = render_pipeline(Registry::global(), "fig6 | frobnicate | verify").unwrap_err();
    assert_eq!(err, PipelineError::Unknown { stage: 1, name: "frobnicate".into() });
    let shown = err.to_string();
    assert!(shown.contains("stage 2"), "{shown}");
    assert!(shown.contains("frobnicate"), "{shown}");
    assert!(shown.contains("transforms list"), "{shown}");
}

#[test]
fn model_incompatible_stage_is_a_typed_error() {
    // coalesce goes U1O -> R1S; no start model lets it apply twice in a row.
    let err = render_pipeline(Registry::global(), "fig6 | coalesce | coalesce").unwrap_err();
    let PipelineError::Incompatible { stage: 2, ref name, from } = err else {
        panic!("expected Incompatible, got {err:?}");
    };
    assert_eq!(name, "coalesce");
    assert_eq!(from, "R1S".parse::<CommModel>().unwrap());
    assert!(err.to_string().contains("stage 3"), "{err}");
}

#[test]
fn pinned_model_mismatch_is_a_typed_error() {
    // Pinning RES after split contradicts split's R1S output.
    let err = render_pipeline(Registry::global(), "fig6 | RMS | split | RES").unwrap_err();
    assert!(
        matches!(err, PipelineError::PinMismatch { stage: 3, .. }),
        "expected PinMismatch, got {err:?}"
    );
}

#[test]
fn no_route_error_names_both_models() {
    let inst = gadgets::fig6();
    let from: CommModel = "R1O".parse().unwrap();
    let to: CommModel = "REA".parse().unwrap();
    let err = render_plan(Registry::global(), &inst, "FIG6", from, to).unwrap_err();
    assert_eq!((err.from, err.to), (from, to));
    let shown = err.to_string();
    assert!(shown.contains("R1O") && shown.contains("REA"), "{shown}");
}

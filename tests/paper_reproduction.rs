//! End-to-end reproduction checks across crates: the Figure 3/4 closure,
//! the Appendix A executions, the separation results, and the realization
//! machinery — everything driven through the public `routelab` API.

use routelab::core::closure::derive_bounds;
use routelab::core::edges::foundational_facts;
use routelab::core::model::CommModel;
use routelab::core::paper::{compare, figure3, figure4, CellVerdict};
use routelab::engine::outcome::{drive, RunOutcome};
use routelab::engine::paper_runs;
use routelab::engine::runner::Runner;
use routelab::engine::schedule::Cyclic;
use routelab::explore::graph::ExploreConfig;
use routelab::explore::oscillation::{analyze, Verdict};
use routelab::explore::trace_search::{search, SearchGoal};
use routelab::realize::verify::verify_path;
use routelab::spp::gadgets;

#[test]
fn figures_3_and_4_are_reproduced_cell_for_cell() {
    let bounds = derive_bounds(&foundational_facts());
    for table in [figure3(), figure4()] {
        let cmp = compare(&bounds, &table);
        assert_eq!(cmp.count(CellVerdict::Conflict), 0, "{}:\n{cmp}", table.name);
        assert_eq!(cmp.count(CellVerdict::Looser), 0, "{}:\n{cmp}", table.name);
        assert_eq!(cmp.count(CellVerdict::Incomparable), 0, "{}:\n{cmp}", table.name);
    }
    // Figure 4 matches exactly; Figure 3 matches except for four cells the
    // closure legitimately *tightens*: combining Prop 3.11 (REA not
    // realizable with repetition in R1O) with U1O/UMO realizing REA with
    // repetition shows R1O and RMO cannot realize U1O or UMO with
    // repetition — a corollary the paper's table does not record.
    let cmp4 = compare(&bounds, &figure4());
    assert_eq!(cmp4.count(CellVerdict::Match), 24 * 12 - 12, "Figure 4");
    let cmp3 = compare(&bounds, &figure3());
    assert_eq!(cmp3.count(CellVerdict::Match), 24 * 12 - 12 - 4, "Figure 3");
    assert_eq!(cmp3.count(CellVerdict::Tighter), 4, "Figure 3");
    let tighter: Vec<String> = cmp3
        .cells
        .iter()
        .filter(|c| c.verdict == CellVerdict::Tighter)
        .map(|c| format!("{}<-{}", c.realized, c.realizer))
        .collect();
    assert_eq!(tighter, ["U1O<-R1O", "U1O<-RMO", "UMO<-R1O", "UMO<-RMO"]);
}

#[test]
fn appendix_a_step_tables_replay_exactly() {
    for run in paper_runs::all_runs() {
        paper_runs::verify(&run).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn disagree_separation_thm_3_8() {
    let inst = gadgets::disagree();
    let cfg = ExploreConfig::default();
    assert!(matches!(analyze(&inst, "R1O".parse().unwrap(), &cfg), Verdict::CanOscillate { .. }));
    for weak in ["REO", "REF", "R1A", "RMA", "REA"] {
        assert!(
            matches!(analyze(&inst, weak.parse().unwrap(), &cfg), Verdict::AlwaysConverges { .. }),
            "{weak}"
        );
    }
}

#[test]
fn a1_and_a2_oscillations_run_forever() {
    for (run, cycle) in [paper_runs::a1_r1o(), paper_runs::a2_reo()] {
        let mut runner = Runner::new(&run.instance);
        runner.run(&run.seq);
        let mut sched = Cyclic::new(cycle);
        match drive(&mut runner, &mut sched, 20_000) {
            RunOutcome::CycleDetected { oscillating, .. } => {
                assert!(oscillating, "{} must oscillate", run.name)
            }
            other => panic!("{}: {other:?}", run.name),
        }
    }
}

#[test]
fn negative_examples_a3_a4_a5_via_search() {
    let cfg = ExploreConfig {
        channel_cap: 6,
        max_states: 2_000_000,
        max_steps_per_state: 50_000,
        ..ExploreConfig::default()
    };
    let a3 = paper_runs::a3_reo();
    let t3 = Runner::trace_of(&a3.instance, &a3.seq);
    assert!(
        search(&a3.instance, "R1O".parse().unwrap(), &t3, SearchGoal::Exact, &cfg).is_impossible()
    );

    let a4 = paper_runs::a4_rea();
    let t4 = Runner::trace_of(&a4.instance, &a4.seq);
    assert!(search(&a4.instance, "R1O".parse().unwrap(), &t4, SearchGoal::Repetition, &cfg)
        .is_impossible());
    assert!(
        search(&a4.instance, "R1O".parse().unwrap(), &t4, SearchGoal::Subsequence, &cfg).is_found()
    );

    let a5 = paper_runs::a5_rea();
    let t5 = Runner::trace_of(&a5.instance, &a5.seq);
    assert!(
        search(&a5.instance, "R1S".parse().unwrap(), &t5, SearchGoal::Exact, &cfg).is_impossible()
    );
}

#[test]
fn realization_chains_hold_on_the_a2_prefix() {
    let (run, _) = paper_runs::a2_reo();
    let from: CommModel = "REO".parse().unwrap();
    for target in ["RMO", "RMS", "UMS", "R1S", "R1O", "UES"] {
        let to: CommModel = target.parse().unwrap();
        let report = verify_path(&run.instance, &run.seq, from, to)
            .unwrap()
            .unwrap_or_else(|| panic!("no chain REO -> {to}"));
        assert!(report.holds(), "{report}");
    }
    // No chain may exist into the models that provably drop oscillations.
    for weak in ["REA", "RMA", "R1A"] {
        let to: CommModel = weak.parse().unwrap();
        assert!(
            verify_path(&run.instance, &run.seq, from, to).unwrap().is_none(),
            "REO must not be realizable in {weak}"
        );
    }
}

#[test]
fn stable_solutions_and_wheels_line_up() {
    use routelab::spp::dispute::is_wheel_free;
    use routelab::spp::solve::enumerate_stable_assignments;
    // Wheel-free instances have exactly one stable solution on this corpus;
    // DISAGREE has two; BAD-GADGET none.
    for (name, inst, expected) in [
        ("DISAGREE", gadgets::disagree(), 2usize),
        ("BAD-GADGET", gadgets::bad_gadget(), 0),
        ("GOOD-GADGET", gadgets::good_gadget(), 1),
        ("FIG7", gadgets::fig7(), 1),
        ("FIG8", gadgets::fig8(), 1),
        ("FIG9", gadgets::fig9(), 1),
    ] {
        let n = enumerate_stable_assignments(&inst, 10_000_000).unwrap().len();
        assert_eq!(n, expected, "{name}");
        if expected == 1 {
            assert!(is_wheel_free(&inst) || name == "FIG6", "{name}");
        }
    }
}

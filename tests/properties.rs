//! Property-based tests over the whole stack: random instances, random fair
//! schedules, transformation soundness, and engine invariants.

use proptest::prelude::*;
use routelab::core::model::CommModel;
use routelab::core::validate::{check_sequence, check_step};
use routelab::engine::runner::Runner;
use routelab::engine::schedule::{RandomFair, RoundRobin, Scheduler};
use routelab::engine::trace::{is_repetition, is_subsequence, strongest_relation, TraceRelation};
use routelab::realize::compose::foundational_edges;
use routelab::realize::verify::verify_edge;
use routelab::spp::generator::{random_instance, RandomSppConfig};
use routelab::spp::solve::{enumerate_stable_assignments, is_stable};
use routelab::spp::SppInstance;

fn arb_instance() -> impl Strategy<Value = SppInstance> {
    (3usize..8, 0usize..5, 1u64..2_000).prop_map(|(nodes, extra, seed)| {
        random_instance(&RandomSppConfig {
            nodes,
            extra_edges: extra,
            max_paths_per_node: 3,
            max_path_len: 5,
            seed,
        })
        .expect("generator output validates")
    })
}

fn arb_model() -> impl Strategy<Value = CommModel> {
    prop::sample::select(CommModel::all())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn generated_instances_validate(inst in arb_instance()) {
        prop_assert!(inst.validate().is_ok());
    }

    #[test]
    fn stable_assignments_found_by_solver_are_stable(inst in arb_instance()) {
        if let Ok(solutions) = enumerate_stable_assignments(&inst, 200_000) {
            for pi in solutions {
                prop_assert!(is_stable(&inst, &pi));
            }
        }
    }

    #[test]
    fn random_fair_schedules_are_legal_and_message_conserving(
        inst in arb_instance(),
        model in arb_model(),
        seed in 0u64..1_000,
    ) {
        let mut sched = RandomFair::new(&inst, model, seed);
        let mut runner = Runner::new(&inst);
        for _ in 0..40 {
            let step = sched.next_step(&runner.state()).expect("infinite schedule");
            prop_assert!(check_step(model, inst.graph(), &step).is_ok());
            runner.step(&step);
            // Conservation: messages sent - consumed = in flight.
            let s = runner.stats();
            prop_assert_eq!(
                s.sent - s.consumed,
                runner.state().messages_in_flight()
            );
        }
        // The trace has one entry per step plus the initial assignment.
        prop_assert_eq!(runner.trace().len(), 41);
    }

    #[test]
    fn quiescence_really_is_a_fixpoint(
        inst in arb_instance(),
        model in arb_model(),
        seed in 0u64..1_000,
    ) {
        let mut sched = RandomFair::new(&inst, model, seed).with_drop_prob(0.0);
        let mut runner = Runner::new(&inst);
        for _ in 0..400 {
            if runner.state().is_quiescent() {
                break;
            }
            let step = sched.next_step(&runner.state()).expect("infinite schedule");
            runner.step(&step);
        }
        if runner.state().is_quiescent() {
            let frozen = runner.state().assignment();
            for _ in 0..20 {
                let step = sched.next_step(&runner.state()).expect("infinite schedule");
                runner.step(&step);
                prop_assert_eq!(&runner.state().assignment(), &frozen);
            }
        }
    }

    #[test]
    fn foundational_transformations_hold_on_random_instances(
        inst in arb_instance(),
        edge_idx in 0usize..59, // |foundational_edges()| = 59
        seed in 0u64..500,
    ) {
        let edges = foundational_edges();
        let edge = edges[edge_idx % edges.len()];
        // A fair finite run in the realized model.
        let mut sched = RandomFair::new(&inst, edge.realized, seed).with_drop_prob(0.3);
        let mut runner = Runner::new(&inst);
        let mut seq = Vec::new();
        for _ in 0..3 * inst.node_count() {
            let s = sched.next_step(&runner.state()).expect("infinite schedule");
            runner.step(&s);
            seq.push(s);
        }
        prop_assert!(check_sequence(edge.realized, inst.graph(), &seq).is_ok());
        let report = verify_edge(&inst, &seq, edge.kind, edge.realized, edge.realizer)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert!(report.holds(), "{}", report);
    }

    #[test]
    fn round_robin_trace_relations_are_a_chain(
        inst in arb_instance(),
        model in arb_model(),
    ) {
        // exact ⊆ repetition ⊆ subsequence on real traces.
        let mut sched = RoundRobin::new(&inst, model);
        let mut runner = Runner::new(&inst);
        for _ in 0..2 * inst.node_count() {
            let s = sched.next_step(&runner.state()).expect("infinite schedule");
            runner.step(&s);
        }
        let t = runner.trace().clone();
        prop_assert_eq!(strongest_relation(&t, &t), TraceRelation::Exact);
        prop_assert!(is_repetition(&t, &t));
        prop_assert!(is_subsequence(&t, &t));
        let dedup = t.dedup();
        // The original is a repetition expansion of its dedup.
        prop_assert!(is_repetition(&dedup, &t));
        prop_assert!(is_subsequence(&dedup, &t));
    }
}

#[test]
fn foundational_edge_count_matches_property_range() {
    assert_eq!(foundational_edges().len(), 59);
}

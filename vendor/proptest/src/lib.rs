//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of proptest's API that routelab's property tests
//! use: the [`proptest!`] macro, integer-range / tuple / `prop_map` /
//! `sample::select` / `collection::vec` strategies, `prop_assert*`,
//! `prop_assume!`, [`ProptestConfig`], and [`TestCaseError`].
//!
//! Semantics: each test runs `config.cases` deterministic random cases
//! (seeded from the test name, overridable via `PROPTEST_SEED`). There is no
//! shrinking — a failure reports the exact input that triggered it, which
//! for seeded generators is enough to reproduce.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// A genuine assertion failure.
    Fail(String),
    /// The input was rejected by `prop_assume!` — not a failure.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (filtered input) with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Outcome of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`cases` is the only knob routelab tunes).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Give up after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// A strategy applying `f` to every drawn value.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod sample {
    //! Strategies choosing among explicit alternatives.

    use super::{fmt, Rng, StdRng, Strategy};

    /// A strategy yielding a uniformly random element of a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Chooses uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn select<T: Clone + fmt::Debug>(options: impl Into<Vec<T>>) -> Select<T> {
        let options = options.into();
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::{Rng, StdRng, Strategy};

    /// An inclusive range of collection sizes. Taking `impl Into<SizeRange>`
    /// (rather than a generic size strategy) matches upstream and — like
    /// [`SampleRange`](rand::Rng::gen_range) — lets untyped literal ranges
    /// such as `1..6` infer `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// A strategy yielding vectors of `elem` values with random length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vectors whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod runner {
    //! The case loop behind [`proptest!`](crate::proptest).

    use super::{
        ProptestConfig, Rng, SeedableRng, StdRng, Strategy, TestCaseError, TestCaseResult,
    };

    fn base_seed(name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                return v;
            }
        }
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `f` on `cfg.cases` accepted samples of `strat`.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first failing case,
    /// reporting the seed and the generated input.
    pub fn run<S: Strategy>(
        name: &str,
        cfg: &ProptestConfig,
        strat: &S,
        f: impl Fn(S::Value) -> TestCaseResult,
    ) {
        let seed = base_seed(name);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        while accepted < cfg.cases {
            let case_seed = rng.gen_range(0..u64::MAX);
            let mut case_rng = StdRng::seed_from_u64(case_seed);
            let value = strat.sample(&mut case_rng);
            let rendered = format!("{value:?}");
            match f(value) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected < cfg.max_global_rejects,
                        "proptest {name}: too many rejected inputs \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest {name} failed at case {accepted} \
                     (base seed {seed}, case seed {case_seed}):\n{msg}\ninput: {rendered}"
                ),
            }
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };

    /// Namespaced access to strategy modules, proptest-style (`prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests.
///
/// Supports the upstream form used in this repository: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal item muncher for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            $crate::runner::run(
                stringify!($name),
                &config,
                &strategy,
                |($($arg,)+)| -> $crate::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a property test, failing the case (not the
/// whole process) so the runner can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (l, r) => $crate::prop_assert!(
                *l == *r,
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), l, r
            ),
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (l, r) => $crate::prop_assert!(
                *l == *r,
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)*), l, r
            ),
        }
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (l, r) => $crate::prop_assert!(
                *l != *r,
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                l
            ),
        }
    };
}

/// Rejects the current input (a filter, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..8, y in 0u8..=4) {
            prop_assert!((3..8).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn map_and_select_compose(
            v in prop::collection::vec(0u32..30, 1..6),
            pick in prop::sample::select(vec!["a", "b", "c"]),
            doubled in (1u64..100).prop_map(|n| n * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 30));
            prop_assert!(["a", "b", "c"].contains(&pick));
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }

        #[test]
        fn assume_filters(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0, "n = {}", n);
        }
    }

    #[test]
    fn failing_case_reports_input() {
        let result = std::panic::catch_unwind(|| {
            crate::runner::run(
                "always_fails",
                &ProptestConfig { cases: 4, ..ProptestConfig::default() },
                &(0u32..10,),
                |(_n,)| Err(TestCaseError::fail("boom")),
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("boom") && msg.contains("input:"), "{msg}");
    }
}

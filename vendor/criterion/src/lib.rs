//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! provides criterion's macro-level API (`criterion_group!`,
//! `criterion_main!`, groups, `bench_with_input`, `BenchmarkId`,
//! [`black_box`]) backed by a deliberately simple wall-clock harness: each
//! benchmark is calibrated to a target measurement time, run for
//! `sample_size` samples, and reported as min/median ns per iteration on
//! stdout. No plots, no statistics beyond the median — enough to track the
//! perf trajectory in `BENCH_*.json` extractions.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{param}") }
    }

    /// An id that is just the parameter rendering.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId { id: param.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Runs timed iterations for one benchmark.
pub struct Bencher {
    samples: usize,
    target: Duration,
    /// Collected per-iteration nanosecond estimates, one per sample.
    results: Vec<f64>,
}

impl Bencher {
    /// Times `f`, collecting `samples` calibrated batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in target/samples?
        let mut n = 1u64;
        let budget = self.target.as_secs_f64() / self.samples as f64;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64();
            if dt >= budget / 4.0 || n >= 1 << 24 {
                let per_iter = dt / n as f64;
                n = ((budget / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1 << 24);
                break;
            }
            n *= 8;
        }
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            self.results.push(t0.elapsed().as_secs_f64() * 1e9 / n as f64);
        }
    }
}

fn report(id: &str, results: &[f64]) {
    if results.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let mut sorted = results.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    println!("{id:<48} median {median:>12.1} ns/iter   (min {min:.1})");
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            target: self.measurement_time,
            results: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.results);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut f = f;
        self.run_one(id.to_string(), |b| f(b));
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run_one(id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; ours prints eagerly).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, measurement_time: Duration::from_millis(750) }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    /// Benchmarks `f` outside any explicit group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        // Group name already carries the id; avoid printing it twice.
        group.name = String::new();
        let mut f = f;
        group.run_one(name, |b| f(b));
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench_fn:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench_fn(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("fig6", "RMS").to_string(), "fig6/RMS");
        assert_eq!(BenchmarkId::from_parameter(12).to_string(), "12");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3).measurement_time(Duration::from_millis(20));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}

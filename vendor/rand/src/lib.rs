//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the API subset routelab uses — [`rngs::StdRng`], the
//! [`Rng`] / [`SeedableRng`] traits, and [`seq::SliceRandom`] — backed by
//! xoshiro256++ seeded through SplitMix64. The generator is deterministic
//! per seed (the repository's experiments and tests rely only on
//! self-consistency, never on the upstream crate's exact stream).

/// Low-level source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive integer range).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{Rng, SeedableRng};
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let x = rng.gen_range(0..10usize);
    /// assert!(x < 10);
    /// ```
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Integer ranges that can be sampled uniformly, yielding `T`.
///
/// The element type is a trait *parameter* (not an associated type) so that
/// an untyped literal range like `0..3` gets its integer type inferred from
/// the call site's expected output, exactly as with the upstream crate.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[0, span)` via Lemire rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        // Accept unless the low word lands in the biased fringe.
        if low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workhorse generator: xoshiro256++ (Blackman–Vigna), seeded via
    /// SplitMix64 so that every 64-bit seed yields a well-mixed state.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..100).any(|_| a.gen_range(0..u64::MAX) != c.gen_range(0..u64::MAX));
        assert!(differs);
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let x = rng.gen_range(0..5usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
        for _ in 0..500 {
            let x = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&x));
        }
    }

    #[test]
    fn gen_bool_rate_is_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_and_choose_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(<[u32]>::choose(&[], &mut rng).is_none());
        let one = [9u32];
        assert_eq!(one.choose(&mut rng), Some(&9));
    }
}

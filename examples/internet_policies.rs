//! Internet-style policies: generate Gao–Rexford (customer/peer/provider)
//! topologies — which provably carry no dispute wheel — and random-policy
//! networks, then measure convergence of randomized fair schedules across
//! communication models.
//!
//! Run with `cargo run --example internet_policies [nodes] [seeds]`.

use routelab::core::model::CommModel;
use routelab::sim::montecarlo::{run_cell, CellConfig};
use routelab::sim::table::Table;
use routelab::spp::dispute::is_wheel_free;
use routelab::spp::generator::{gao_rexford_instance, random_instance, RandomSppConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let seeds: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    let models: Vec<CommModel> =
        ["R1O", "RMS", "UMS", "REA"].iter().map(|s| s.parse().expect("model")).collect();
    let cfg = CellConfig { runs: 25, max_steps: 30_000, seed: 1, drop_prob: 0.25 };

    let mut table = Table::new(vec![
        "instance".into(),
        "wheel-free".into(),
        "model".into(),
        "conv rate".into(),
        "mean steps".into(),
    ]);
    for seed in 0..seeds {
        let gr = gao_rexford_instance(nodes, seed, 6, 5)?;
        let rnd = random_instance(&RandomSppConfig { nodes, seed, ..RandomSppConfig::default() })?;
        for (name, inst) in [(format!("gao-rexford #{seed}"), gr), (format!("random #{seed}"), rnd)]
        {
            let wf = is_wheel_free(&inst);
            for &m in &models {
                let stats = run_cell(&inst, m, &cfg);
                table.row(vec![
                    name.clone(),
                    wf.to_string(),
                    m.to_string(),
                    format!("{:.2}", stats.convergence_rate()),
                    format!("{:.1}", stats.mean_steps),
                ]);
            }
        }
    }
    println!("{table}");
    println!("Gao–Rexford policies are dispute-wheel-free, so every cell shows rate 1.00;");
    println!("random policies may carry a wheel and then converge only with luck — with");
    println!("polling (REA) still converging more often than message passing (R1O).");
    Ok(())
}

//! Quickstart: build the DISAGREE instance by hand, execute it under two
//! communication models, and watch the model choice decide convergence.
//!
//! Run with `cargo run --example quickstart`.

use routelab::engine::outcome::{drive, RunOutcome};
use routelab::engine::paper_runs;
use routelab::engine::runner::Runner;
use routelab::engine::schedule::{Cyclic, RoundRobin};
use routelab::spp::SppBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // DISAGREE (Fig. 5): x and y each prefer routing through the other.
    let mut b = SppBuilder::new();
    let d = b.node("d");
    let x = b.node("x");
    let y = b.node("y");
    b.edge("x", "d")?;
    b.edge("y", "d")?;
    b.edge("x", "y")?;
    b.dest(d)?;
    b.prefer(x, [vec![x, y, d], vec![x, d]])?;
    b.prefer(y, [vec![y, x, d], vec![y, d]])?;
    let inst = b.build()?;
    println!("{inst}");

    // 1. Under the REA "poll all" model the round-robin schedule converges.
    let mut runner = Runner::new(&inst);
    let mut sched = RoundRobin::new(&inst, "REA".parse()?);
    match drive(&mut runner, &mut sched, 1_000) {
        RunOutcome::Converged { steps, assignment } => {
            let routes: Vec<String> = assignment.iter().map(|r| inst.fmt_route(r)).collect();
            println!("REA round-robin converged after {steps} steps to ({})", routes.join(", "));
        }
        other => println!("unexpected: {other:?}"),
    }

    // 2. Under the event-driven R1O model the same network can oscillate
    //    forever on a fair schedule (Example A.1).
    let (run, cycle) = paper_runs::a1_r1o();
    let mut runner = Runner::new(&run.instance);
    runner.run(&run.seq);
    let mut sched = Cyclic::new(cycle);
    match drive(&mut runner, &mut sched, 10_000) {
        RunOutcome::CycleDetected { period, oscillating, .. } => {
            println!(
                "R1O fair cycle: state repeats with period {period}, oscillating = {oscillating}"
            );
            println!("last few assignments:");
            let t = runner.trace();
            for k in t.len().saturating_sub(4)..t.len() {
                let pi = t.get(k).expect("index in range");
                let routes: Vec<String> = pi.iter().map(|r| run.instance.fmt_route(r)).collect();
                println!("  t={k}: ({})", routes.join(", "));
            }
        }
        other => println!("unexpected: {other:?}"),
    }
    Ok(())
}

//! Policy audit: the workflow a protocol designer would run on a routing
//! configuration — enumerate stable solutions, look for dispute wheels, and
//! survey which communication models can make the network oscillate.
//!
//! Run with `cargo run --example policy_audit [spp-file]`; without an
//! argument it audits the paper's Fig. 6 instance.

use routelab::explore::graph::ExploreConfig;
use routelab::sim::survey::{survey_instance, SurveyConfig, SurveyOutcome};
use routelab::spp::solve::{enumerate_stable_assignments, fmt_assignment};
use routelab::spp::{dispute, format, gadgets};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inst = match std::env::args().nth(1) {
        Some(path) => format::from_text(&std::fs::read_to_string(path)?)?,
        None => gadgets::fig6(),
    };
    println!("{inst}");

    // 1. Stable solutions (the NP-complete core, brute-forced).
    let solutions = enumerate_stable_assignments(&inst, 5_000_000)?;
    println!("stable path assignments: {}", solutions.len());
    for s in &solutions {
        println!("  {}", fmt_assignment(&inst, s));
    }

    // 2. Dispute wheels: the broadest known sufficient condition for
    //    convergence is their absence.
    match dispute::find_dispute_wheel(&inst) {
        Some(wheel) => println!("dispute wheel: {}", wheel.display(&inst)),
        None => println!("no dispute wheel: every fair execution converges in every model"),
    }

    // 3. Per-model oscillation survey.
    let cfg = SurveyConfig {
        explore: ExploreConfig { channel_cap: 3, ..ExploreConfig::default() },
        ..SurveyConfig::default()
    };
    println!("\nper-model verdicts:");
    for entry in survey_instance(&inst, &cfg) {
        let verdict = match entry.outcome {
            SurveyOutcome::Oscillates { via: None } => "can oscillate (exhaustive)".to_string(),
            SurveyOutcome::Oscillates { via: Some(p) } => {
                format!("can oscillate (realizes {p}'s oscillation)")
            }
            SurveyOutcome::Converges { via: None } => "always converges (exhaustive)".to_string(),
            SurveyOutcome::Converges { via: Some(p) } => {
                format!("always converges (realized by converging {p})")
            }
            SurveyOutcome::Unknown => "undecided within bounds".to_string(),
        };
        println!("  {}: {verdict}", entry.model);
    }
    Ok(())
}

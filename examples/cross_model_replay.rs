//! Cross-model replay: record an execution in one communication model and
//! replay it in another through the paper's constructive realizations,
//! checking the Definition 3.2 trace relation along the way.
//!
//! Run with `cargo run --example cross_model_replay`.

use routelab::core::model::CommModel;
use routelab::engine::paper_runs;
use routelab::engine::runner::Runner;
use routelab::realize::compose::{plan, realize};
use routelab::realize::verify::verify_path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The REO execution of Example A.2 — 13 steps that set up the Fig. 6
    // oscillation.
    let (run, _) = paper_runs::a2_reo();
    let from: CommModel = "REO".parse()?;
    println!("source: Example A.2's {} steps in {from}", run.seq.len());

    for target in ["RMO", "RMS", "UMS", "R1S", "R1O"] {
        let to: CommModel = target.parse()?;
        let Some(chain) = plan(from, to) else {
            println!("{to}: no realization chain exists");
            continue;
        };
        let hops: Vec<String> =
            chain.iter().map(|e| format!("{}({:?})", e.realizer, e.kind)).collect();
        let out = realize(&run.instance, &run.seq, from, to)?.expect("chain exists");
        let report = verify_path(&run.instance, &run.seq, from, to)?.expect("chain exists");
        println!(
            "{to}: chain {} -> [{}], {} steps, claimed {}, achieved {:?}, holds = {}",
            from,
            hops.join(" -> "),
            out.seq.len(),
            report.claimed,
            report.achieved,
            report.holds()
        );
    }

    // Show the realized trace in the strongest target.
    let to: CommModel = "RMS".parse()?;
    let out = realize(&run.instance, &run.seq, from, to)?.expect("chain exists");
    let trace = Runner::trace_of(&run.instance, &out.seq);
    println!("\nrealized RMS trace (identical to the REO one):");
    print!("{}", trace.render(&run.instance));
    Ok(())
}

#!/usr/bin/env python3
"""Bench-regression gate for results/BENCH_explore.json.

Usage: check_bench.py [path/to/BENCH_explore.json]

Fails (exit 1) when:
  * the headline cell (unreduced FIG6 x R1A, 1 thread) falls below the
    baseline throughput the JSON itself carries (`baseline_states_per_s`,
    the pre-delta-arena engine's figure);
  * any run was not bit-identical across thread counts;
  * the reduced and unreduced oscillation verdicts disagree.

The gate compares states/s, not wall-clock, so it is robust to the cell
size changing; the baseline constant lives in the bench source
(crates/bench/benches/explore_scaling.rs) and must only ever be raised.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "results/BENCH_explore.json"
    with open(path) as f:
        bench = json.load(f)

    if not bench.get("bit_identical_across_thread_counts"):
        fail("outputs were not bit-identical across thread counts")
    if not bench.get("reduced_verdicts_match_unreduced"):
        fail("reduction changed an oscillation verdict")

    baseline = bench.get("baseline_states_per_s")
    if not baseline:
        fail("no baseline_states_per_s in the JSON (bench too old?)")

    headline = None
    for cell in bench["cells"]:
        if cell["model"] == "R1A" and cell["gadget"] == "FIG6" and not cell["reduce"]:
            for run in cell["runs"]:
                if run["threads"] == 1:
                    headline = run
    if headline is None:
        fail("headline cell (unreduced FIG6 x R1A @1t) missing from the JSON")

    rate = headline["states_per_s"]
    ratio = rate / baseline
    print(
        f"check_bench: unreduced FIG6 x R1A @1t: {rate:,.0f} states/s "
        f"({ratio:.2f}x the {baseline:,.0f} states/s baseline)"
    )
    if rate < baseline:
        fail(f"throughput regressed below the baseline ({rate:,.0f} < {baseline:,.0f} states/s)")
    print("check_bench: OK")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Bench-regression gate, dispatching on the JSON's own `bench` field.

Usage: check_bench.py [path/to/BENCH_*.json]

For `results/BENCH_explore.json` (the default), fails (exit 1) when:
  * the headline cell (unreduced FIG6 x R1A, 1 thread) falls below the
    baseline throughput the JSON itself carries (`baseline_states_per_s`,
    the pre-delta-arena engine's figure);
  * any run was not bit-identical across thread counts;
  * the reduced and unreduced oscillation verdicts disagree.

For `results/BENCH_engine.json` (`"bench": "engine"`), fails when the
pinned Monte-Carlo grid's single-worker throughput drops below
`min_speedup` times the `baseline_steps_per_sec` the JSON itself carries
(the pre-interned-route engine's figure), or when any run of the
10 000-node Gao-Rexford smoke cell failed to converge within its step
budget. Both constants live in the bench source
(crates/sim/src/bin/exp_engine_bench.rs); the baseline must only ever be
raised.

For `results/BENCH_obs_overhead.json` (`"bench": "obs_overhead"`), fails
when the enabled telemetry sink costs more than OBS_OVERHEAD_MAX_PCT on the
pool grid workload, or the flight recorder (obs + trace, the full
diagnostic stack) costs more than TRACE_OVERHEAD_MAX_PCT. The trace gate
is deliberately loose: the recorder formats every step's causal record and
is a diagnostic tool, not an always-on layer — the gate only catches
pathological regressions (accidental I/O or lock storms on the hot path).

The explore gate compares states/s, not wall-clock, so it is robust to the
cell size changing; the baseline constant lives in the bench source
(crates/bench/benches/explore_scaling.rs) and must only ever be raised.
"""

import json
import sys

OBS_OVERHEAD_MAX_PCT = 10.0
TRACE_OVERHEAD_MAX_PCT = 300.0


def fail(msg: str) -> None:
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_obs_overhead(bench: dict) -> None:
    for key in ("obs_off_ms", "obs_on_ms", "overhead_pct", "trace_on_ms", "trace_overhead_pct"):
        if key not in bench:
            fail(f"no {key} in the JSON (bench too old?)")
    print(
        f"check_bench: obs-off {bench['obs_off_ms']:.2f} ms, "
        f"obs-on {bench['obs_on_ms']:.2f} ms ({bench['overhead_pct']:+.2f}%), "
        f"trace-on {bench['trace_on_ms']:.2f} ms ({bench['trace_overhead_pct']:+.2f}%)"
    )
    if bench["overhead_pct"] > OBS_OVERHEAD_MAX_PCT:
        fail(
            f"obs overhead {bench['overhead_pct']:.2f}% exceeds the "
            f"{OBS_OVERHEAD_MAX_PCT:.0f}% gate"
        )
    if bench["trace_overhead_pct"] > TRACE_OVERHEAD_MAX_PCT:
        fail(
            f"flight-recorder overhead {bench['trace_overhead_pct']:.2f}% exceeds the "
            f"{TRACE_OVERHEAD_MAX_PCT:.0f}% gate"
        )
    print("check_bench: OK")


def check_engine(bench: dict) -> None:
    for key in ("baseline_steps_per_sec", "min_speedup", "steps_per_sec", "tenk"):
        if key not in bench:
            fail(f"no {key} in the JSON (bench too old?)")
    rate = bench["steps_per_sec"]
    base = bench["baseline_steps_per_sec"]
    want = bench["min_speedup"]
    print(
        f"check_bench: engine grid @1t: {rate:,.0f} steps/s "
        f"({rate / base:.2f}x the {base:,.0f} steps/s baseline, gate {want:.1f}x)"
    )
    if rate < want * base:
        fail(
            f"engine throughput {rate:,.0f} steps/s is below the gate "
            f"({want:.1f}x {base:,.0f} = {want * base:,.0f} steps/s)"
        )
    tenk = bench["tenk"]
    for key in ("nodes", "runs", "converged", "max_steps", "steps_per_sec"):
        if key not in tenk:
            fail(f"no tenk.{key} in the JSON (bench too old?)")
    print(
        f"check_bench: tenk n={tenk['nodes']}: {tenk['converged']}/{tenk['runs']} "
        f"converged, {tenk['steps_per_sec']:,.0f} steps/s"
    )
    if tenk["converged"] != tenk["runs"]:
        fail(
            f"10k-node cell: only {tenk['converged']}/{tenk['runs']} runs converged "
            f"within {tenk['max_steps']} steps (Gao-Rexford is wheel-free; all must)"
        )
    print("check_bench: OK")


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "results/BENCH_explore.json"
    with open(path) as f:
        bench = json.load(f)

    if bench.get("bench") == "obs_overhead":
        check_obs_overhead(bench)
        return

    if bench.get("bench") == "engine":
        check_engine(bench)
        return

    if not bench.get("bit_identical_across_thread_counts"):
        fail("outputs were not bit-identical across thread counts")
    if not bench.get("reduced_verdicts_match_unreduced"):
        fail("reduction changed an oscillation verdict")

    baseline = bench.get("baseline_states_per_s")
    if not baseline:
        fail("no baseline_states_per_s in the JSON (bench too old?)")

    headline = None
    for cell in bench["cells"]:
        if cell["model"] == "R1A" and cell["gadget"] == "FIG6" and not cell["reduce"]:
            for run in cell["runs"]:
                if run["threads"] == 1:
                    headline = run
    if headline is None:
        fail("headline cell (unreduced FIG6 x R1A @1t) missing from the JSON")

    rate = headline["states_per_s"]
    ratio = rate / baseline
    print(
        f"check_bench: unreduced FIG6 x R1A @1t: {rate:,.0f} states/s "
        f"({ratio:.2f}x the {baseline:,.0f} states/s baseline)"
    )
    if rate < baseline:
        fail(f"throughput regressed below the baseline ({rate:,.0f} < {baseline:,.0f} states/s)")
    print("check_bench: OK")


if __name__ == "__main__":
    main()

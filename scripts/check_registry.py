#!/usr/bin/env python3
"""Registry-coverage gate: every public realization transform and gadget
generator must have a registry entry, and every registry entry must
dispatch to a function that still exists.

The registry prints each entry's dispatch target in the `impl` column of
`routelab transforms list` (e.g. `transform::pad_m_to_e`). This script
greps the `pub fn` surface of `crates/realize/src/transform.rs` and
`crates/spp/src/gadgets.rs` and demands an exact two-way match, so a
transform or generator added without a registry entry (or an entry whose
algorithm was renamed away) fails CI.

Usage: check_registry.py <transforms-list.txt> [repo-root]
"""

import re
import sys
from pathlib import Path

# Public functions that are deliberately not pipeline stages.
EXCLUDED = {
    "gadgets::corpus",  # the library index, not a generator
}

SOURCES = {
    "transform": "crates/realize/src/transform.rs",
    "gadgets": "crates/spp/src/gadgets.rs",
}


def public_fns(root: Path) -> set[str]:
    fns = set()
    for module, rel in SOURCES.items():
        text = (root / rel).read_text()
        for name in re.findall(r"^pub fn (\w+)", text, flags=re.M):
            fns.add(f"{module}::{name}")
    return fns - EXCLUDED


def registered_impls(listing: str) -> set[str]:
    # The impl column entries are the only `module::function` tokens in the
    # listing output.
    return set(re.findall(r"\b(?:transform|gadgets|verify)::\w+", listing))


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    listing = Path(sys.argv[1]).read_text()
    root = Path(sys.argv[2]) if len(sys.argv) > 2 else Path(__file__).resolve().parent.parent

    want = public_fns(root)
    have = {impl for impl in registered_impls(listing) if not impl.startswith("verify::")}

    missing = sorted(want - have)
    stale = sorted(have - want)
    if missing:
        print(f"NOT REGISTERED (add registry entries): {missing}", file=sys.stderr)
    if stale:
        print(f"STALE REGISTRY ENTRIES (no such function): {stale}", file=sys.stderr)
    if missing or stale:
        return 1
    print(f"registry coverage OK: {len(want)} transforms/generators all registered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
